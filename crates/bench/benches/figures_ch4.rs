//! Smoke-scale regeneration of the Chapter 4 figures (the simulation study).
//! Each bench runs the same code path as the `paper` binary, at the smallest
//! scale, so `cargo bench` exercises every figure end to end.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion};

use experiments::ch4;
use experiments::harness::Scale;

fn bench_ch4_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_ch4");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));

    group.bench_function("fig4_2_trp_sweep", |b| b.iter(|| ch4::fig4_2(Scale::Smoke).rows.len()));
    group.bench_function("fig4_3_normalized_time", |b| b.iter(|| ch4::fig4_3(Scale::Smoke).rows.len()));
    group.bench_function("fig4_4_normalized_traffic", |b| b.iter(|| ch4::fig4_4(Scale::Smoke).rows.len()));
    group.bench_function("fig4_5_8_temperature_traces", |b| b.iter(|| ch4::fig4_5_8(Scale::Smoke).rows.len()));
    group.bench_function("fig4_9_memory_energy", |b| b.iter(|| ch4::fig4_9(Scale::Smoke).rows.len()));
    group.bench_function("fig4_12_integrated_model", |b| b.iter(|| ch4::fig4_12(Scale::Smoke).rows.len()));
    group.bench_function("fig4_13_interaction_degrees", |b| b.iter(|| ch4::fig4_13(Scale::Smoke).rows.len()));
    group.finish();
}

criterion_group!(figures_ch4, bench_ch4_figures);
criterion_main!(figures_ch4);
