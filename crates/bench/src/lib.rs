//! # experiments
//!
//! The benchmark harness of the reproduction: one entry point per table and
//! figure of the paper's evaluation (Chapters 3–5 of the dissertation text,
//! i.e. the ISCA 2007 paper plus its measurement follow-on).
//!
//! Every experiment is a plain function that returns a [`harness::Table`];
//! the `paper` binary prints the requested experiment (or all of them) and
//! optionally dumps the rows as JSON. Criterion benches in `benches/` call
//! the same functions at smoke scale so `cargo bench` exercises every
//! experiment end to end.
//!
//! ```no_run
//! use experiments::{ch4, harness::Scale};
//! let table = ch4::fig4_3(Scale::Smoke);
//! println!("{table}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ch3;
pub mod ch4;
pub mod ch5;
pub mod harness;
pub mod sweep;

use harness::{Scale, Table};

/// Returns the list of all experiment identifiers, in paper order.
pub fn all_experiment_ids() -> Vec<&'static str> {
    vec![
        "tab3_1", "tab3_2", "tab3_3", "tab4_3", "tab4_4", "fig4_2", "fig4_3", "fig4_4", "fig4_5_8", "fig4_9",
        "fig4_10", "fig4_11", "fig4_12", "fig4_13", "fig4_14", "fig5_4", "fig5_5", "fig5_6", "fig5_7", "fig5_8",
        "fig5_9", "fig5_10", "fig5_11", "fig5_12", "fig5_13", "fig5_14", "fig5_15",
    ]
}

/// Runs one experiment by identifier.
///
/// # Errors
///
/// Returns an error string when the identifier is unknown.
pub fn run_experiment(id: &str, scale: Scale) -> Result<Table, String> {
    let table = match id {
        "tab3_1" => ch3::tab3_1(),
        "tab3_2" => ch3::tab3_2(),
        "tab3_3" => ch3::tab3_3(),
        "tab4_3" => ch4::tab4_3(),
        "tab4_4" => ch4::tab4_4(),
        "fig4_2" => ch4::fig4_2(scale),
        "fig4_3" => ch4::fig4_3(scale),
        "fig4_4" => ch4::fig4_4(scale),
        "fig4_5_8" => ch4::fig4_5_8(scale),
        "fig4_9" => ch4::fig4_9(scale),
        "fig4_10" => ch4::fig4_10(scale),
        "fig4_11" => ch4::fig4_11(scale),
        "fig4_12" => ch4::fig4_12(scale),
        "fig4_13" => ch4::fig4_13(scale),
        "fig4_14" => ch4::fig4_14(scale),
        "fig5_4" => ch5::fig5_4(scale),
        "fig5_5" => ch5::fig5_5(scale),
        "fig5_6" => ch5::fig5_6(scale),
        "fig5_7" => ch5::fig5_7(scale),
        "fig5_8" => ch5::fig5_8(scale),
        "fig5_9" => ch5::fig5_9(scale),
        "fig5_10" => ch5::fig5_10(scale),
        "fig5_11" => ch5::fig5_11(scale),
        "fig5_12" => ch5::fig5_12(scale),
        "fig5_13" => ch5::fig5_13(scale),
        "fig5_14" => ch5::fig5_14(scale),
        "fig5_15" => ch5::fig5_15(scale),
        other => return Err(format!("unknown experiment id: {other}")),
    };
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_is_runnable_by_id() {
        // Only the cheap, simulation-free tables are actually executed here;
        // the id dispatch itself is what this test guards.
        for id in ["tab3_1", "tab3_2", "tab3_3", "tab4_3", "tab4_4"] {
            let t = run_experiment(id, Scale::Smoke).unwrap();
            assert!(!t.rows.is_empty());
        }
        assert!(run_experiment("fig9_9", Scale::Smoke).is_err());
        assert_eq!(all_experiment_ids().len(), 27);
    }
}
