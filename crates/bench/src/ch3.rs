//! Chapter 3 tables: power and thermal model parameters.
//!
//! These experiments have no workload component — they print the model
//! parameters exactly as the library exposes them, so a reader can check
//! them against Tables 3.1, 3.2 and 3.3 of the paper line by line.

use memtherm::prelude::*;
use memtherm::thermal::params::HeatSpreader;

use crate::harness::{f1, f3, Table};

/// Table 3.1: AMB power-model parameters.
pub fn tab3_1() -> Table {
    let amb = AmbPowerModel::table_3_1();
    let dram = DramPowerModel::ddr2_667_1gb();
    let mut t =
        Table::new("tab3_1", "AMB and DRAM power model parameters (Eq. 3.1 / 3.2)", &["parameter", "value", "unit"]);
    t.push_row(["P_AMB_idle (last DIMM)", &f1(amb.idle_last_watts), "W"]);
    t.push_row(["P_AMB_idle (other DIMMs)", &f1(amb.idle_other_watts), "W"]);
    t.push_row(["beta (bypass)", &format!("{:.2}", amb.beta_bypass), "W/(GB/s)"]);
    t.push_row(["gamma (local)", &format!("{:.2}", amb.gamma_local), "W/(GB/s)"]);
    t.push_row(["P_DRAM_static", &format!("{:.2}", dram.static_watts), "W"]);
    t.push_row(["alpha1 (read)", &format!("{:.2}", dram.alpha_read), "W/(GB/s)"]);
    t.push_row(["alpha2 (write)", &format!("{:.2}", dram.alpha_write), "W/(GB/s)"]);
    t
}

/// Table 3.2: thermal resistances and time constants per cooling
/// configuration.
pub fn tab3_2() -> Table {
    let mut t = Table::new(
        "tab3_2",
        "Thermal model parameters for the AMB and DRAM devices (Table 3.2)",
        &["spreader", "air m/s", "Psi_AMB", "Psi_DRAM_AMB", "Psi_DRAM", "Psi_AMB_DRAM", "tau_AMB s", "tau_DRAM s"],
    );
    for spreader in [HeatSpreader::Aohs, HeatSpreader::Fdhs] {
        for v in [1.0, 1.5, 3.0] {
            let cfg = CoolingConfig { spreader, air_velocity_mps: v };
            let r = cfg.resistances();
            t.push_row([
                spreader.to_string(),
                f1(v),
                f1(r.psi_amb),
                f1(r.psi_dram_amb),
                f1(r.psi_dram),
                f1(r.psi_amb_dram),
                f1(r.tau_amb_s),
                f1(r.tau_dram_s),
            ]);
        }
    }
    t
}

/// Table 3.3: DRAM-ambient model parameters for the isolated and integrated
/// thermal models.
pub fn tab3_3() -> Table {
    let mut t = Table::new(
        "tab3_3",
        "DRAM ambient temperature model parameters (Table 3.3)",
        &["model", "cooling", "system inlet degC", "Psi_CPU_MEM x xi", "tau_CPU_DRAM s"],
    );
    for cooling in [CoolingConfig::fdhs_1_0(), CoolingConfig::aohs_1_5()] {
        let iso = AmbientParams::isolated(&cooling);
        let int = AmbientParams::integrated(&cooling);
        t.push_row([
            "isolated".to_string(),
            cooling.label(),
            f1(iso.system_inlet_c),
            f3(iso.psi_cpu_mem_xi),
            f1(iso.tau_cpu_dram_s),
        ]);
        t.push_row([
            "integrated".to_string(),
            cooling.label(),
            f1(int.system_inlet_c),
            f3(int.psi_cpu_mem_xi),
            f1(int.tau_cpu_dram_s),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab3_1_reports_the_paper_constants() {
        let t = tab3_1();
        assert_eq!(t.cell("value", |r| r[0].starts_with("P_AMB_idle (last")), Some("4.0"));
        assert_eq!(t.cell("value", |r| r[0].starts_with("beta")), Some("0.19"));
        assert_eq!(t.cell("value", |r| r[0].starts_with("gamma")), Some("0.75"));
    }

    #[test]
    fn tab3_2_has_six_cooling_rows() {
        let t = tab3_2();
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.cell("Psi_AMB", |r| r[0] == "AOHS" && r[1] == "1.5"), Some("9.3"));
        assert_eq!(t.cell("Psi_DRAM", |r| r[0] == "FDHS" && r[1] == "1.0"), Some("4.0"));
    }

    #[test]
    fn tab3_3_distinguishes_isolated_and_integrated() {
        let t = tab3_3();
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.cell("Psi_CPU_MEM x xi", |r| r[0] == "isolated" && r[1] == "AOHS_1.5"), Some("0.000"));
        assert_eq!(t.cell("Psi_CPU_MEM x xi", |r| r[0] == "integrated" && r[1] == "FDHS_1.0"), Some("1.500"));
    }
}
