//! Shared experiment infrastructure: run scales, result tables and the
//! simulator factories used by the Chapter 4 and Chapter 5 experiments.

use memtherm::prelude::*;

/// How much work an experiment run performs.
///
/// The paper's full batch sizes (fifty copies of every application, full
/// SPEC instruction counts) take hours per figure; the smaller scales shrink
/// the batch uniformly, which preserves normalized (relative) results — the
/// quantities every figure reports — while keeping wall-clock time
/// reasonable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smallest runs, used by the Criterion benches and CI.
    Smoke,
    /// Default for the `paper` binary: minutes per figure.
    Quick,
    /// The paper's batch sizes: hours per figure.
    Paper,
}

impl Scale {
    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// MEMSpot configuration for the Chapter 4 simulation experiments under
    /// a cooling configuration.
    pub fn memspot_config(self, cooling: CoolingConfig) -> MemSpotConfig {
        match self {
            Scale::Smoke => MemSpotConfig {
                copies_per_app: 2,
                instruction_scale: 0.6,
                characterization_budget: 15_000,
                ..MemSpotConfig::paper(cooling)
            },
            Scale::Quick => MemSpotConfig {
                copies_per_app: 10,
                instruction_scale: 0.6,
                characterization_budget: 60_000,
                ..MemSpotConfig::paper(cooling)
            },
            Scale::Paper => MemSpotConfig::paper(cooling),
        }
    }

    /// Workload mixes evaluated at this scale (a subset for smoke runs).
    pub fn ch4_mixes(self) -> Vec<WorkloadMix> {
        match self {
            Scale::Smoke => vec![mixes::w1(), mixes::w6()],
            _ => mixes::all_ch4_mixes(),
        }
    }

    /// Batch size (runs per application) for the Chapter 5 platform
    /// experiments.
    pub fn platform_runs_per_app(self) -> usize {
        match self {
            Scale::Smoke => 1,
            Scale::Quick => 2,
            Scale::Paper => 10,
        }
    }

    /// Instruction scale for the Chapter 5 platform experiments.
    pub fn platform_instruction_scale(self) -> f64 {
        match self {
            Scale::Smoke => 0.6,
            Scale::Quick => 1.0,
            Scale::Paper => 1.0,
        }
    }
}

/// A printable experiment result: a titled table of rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Experiment identifier (e.g. `"fig4_3"`).
    pub id: String,
    /// Human-readable title (what the paper's caption says).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringifying each cell).
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        self.rows.push(row.into_iter().map(|c| c.to_string()).collect());
    }

    /// Serializes the table to JSON.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn str_array(items: &[String]) -> String {
            let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", cells.join(", "))
        }
        let rows: Vec<String> = self.rows.iter().map(|r| format!("    {}", str_array(r))).collect();
        format!(
            "{{\n  \"id\": \"{}\",\n  \"title\": \"{}\",\n  \"headers\": {},\n  \"rows\": [\n{}\n  ]\n}}",
            esc(&self.id),
            esc(&self.title),
            str_array(&self.headers),
            rows.join(",\n")
        )
    }

    /// Looks up a cell by row predicate and column name (used by tests).
    pub fn cell(&self, col: &str, pred: impl Fn(&[String]) -> bool) -> Option<&str> {
        let idx = self.headers.iter().position(|h| h == col)?;
        self.rows.iter().find(|r| pred(r)).and_then(|r| r.get(idx)).map(String::as_str)
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Result of one [`bench_case`] measurement, in a machine-consumable form
/// (serialized into `BENCH_sweep.json` by [`write_bench_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Case label (e.g. `"memspot_w1/dtm_ts"`).
    pub label: String,
    /// Mean wall-clock time per iteration, milliseconds.
    pub mean_ms: f64,
    /// Minimum wall-clock time per iteration, milliseconds.
    pub min_ms: f64,
    /// Number of timed iterations.
    pub iters: usize,
}

/// Minimal wall-clock benchmark runner used by the `benches/` binaries
/// (the container builds offline, so there is no external bench harness).
/// Runs one warm-up iteration plus `iters` timed iterations, prints the
/// mean and minimum time per iteration and returns them as [`BenchStats`]
/// for machine-readable reporting.
pub fn bench_case<T>(label: &str, iters: usize, mut f: impl FnMut() -> T) -> BenchStats {
    let iters = iters.max(1);
    let _warmup = f();
    let mut samples_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = std::time::Instant::now();
        let result = f();
        samples_ms.push(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(result);
    }
    let mean = samples_ms.iter().sum::<f64>() / samples_ms.len() as f64;
    let min = samples_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("{label:<44} {mean:>10.3} ms/iter (min {min:.3} ms, {iters} iters)");
    BenchStats { label: label.to_string(), mean_ms: mean, min_ms: min, iters }
}

/// Absolute path of a bench-output file at the **workspace root**. Cargo
/// runs bench executables with their cwd set to the *package* root
/// (`crates/bench`), while examples run from the caller's cwd — anchoring on
/// the compile-time manifest dir makes every binary agree on one location,
/// which is where CI picks the artifact up.
pub fn bench_output_path(file_name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(file_name)
}

/// Writes benchmark results as machine-readable JSON (the `BENCH_sweep.json`
/// artifact CI uploads): a `benchmarks` array of [`BenchStats`] plus a flat
/// `metrics` object for scalar quantities such as speedups or cache-hit
/// counts.
pub fn write_bench_json(
    path: impl AsRef<std::path::Path>,
    stats: &[BenchStats],
    metrics: &[(&str, f64)],
) -> std::io::Result<()> {
    fn esc(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }
    fn num(x: f64) -> String {
        if x.is_finite() {
            // Shortest round-trip form: `{x}` prints the fewest digits that
            // parse back to the same f64, so sub-1e-6 metrics (e.g. the
            // 1e-9-grade envelope error bounds) survive the JSON round trip
            // instead of flushing to `0.000000`. A bare integral float
            // prints without a fraction, which is still valid JSON.
            format!("{x}")
        } else {
            "null".to_string()
        }
    }
    let benches: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "    {{\"label\": \"{}\", \"mean_ms\": {}, \"min_ms\": {}, \"iters\": {}}}",
                esc(&s.label),
                num(s.mean_ms),
                num(s.min_ms),
                s.iters
            )
        })
        .collect();
    let metric_lines: Vec<String> = metrics.iter().map(|(k, v)| format!("    \"{}\": {}", esc(k), num(*v))).collect();
    let json = format!(
        "{{\n  \"benchmarks\": [\n{}\n  ],\n  \"metrics\": {{\n{}\n  }}\n}}\n",
        benches.join(",\n"),
        metric_lines.join(",\n")
    );
    std::fs::write(path, json)
}

/// Formats a floating point number with three significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a floating point number with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Arithmetic mean of a slice (NaN-free inputs assumed); 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_sizes() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
        assert!(Scale::Smoke.ch4_mixes().len() < Scale::Quick.ch4_mixes().len());
        assert!(Scale::Paper.memspot_config(CoolingConfig::aohs_1_5()).copies_per_app == 50);
        assert!(Scale::Smoke.platform_runs_per_app() <= Scale::Paper.platform_runs_per_app());
        assert!(Scale::Quick.platform_instruction_scale() > 0.0);
    }

    #[test]
    fn tables_render_and_round_trip() {
        let mut t = Table::new("tabX", "demo", &["workload", "value"]);
        t.push_row(["W1", "1.25"]);
        t.push_row(["W2", "0.97"]);
        let s = t.to_string();
        assert!(s.contains("tabX") && s.contains("W2"));
        assert!(t.to_json().contains("\"rows\""));
        assert_eq!(t.cell("value", |r| r[0] == "W1"), Some("1.25"));
        assert_eq!(t.cell("nope", |_| true), None);
    }

    #[test]
    fn small_helpers_behave() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn bench_case_returns_stats() {
        let stats = bench_case("harness/self_test", 3, || std::hint::black_box(21 * 2));
        assert_eq!(stats.label, "harness/self_test");
        assert_eq!(stats.iters, 3);
        assert!(stats.mean_ms >= stats.min_ms);
        assert!(stats.min_ms >= 0.0);
    }

    #[test]
    fn bench_json_round_trips_labels_and_metrics() {
        let stats = vec![
            BenchStats { label: "sweep/sequential".to_string(), mean_ms: 12.5, min_ms: 11.0, iters: 3 },
            BenchStats { label: "sweep/\"quoted\"".to_string(), mean_ms: 6.25, min_ms: 6.0, iters: 3 },
        ];
        let path = std::env::temp_dir().join("bench_json_round_trip_test.json");
        write_bench_json(&path, &stats, &[("speedup", 2.0), ("threads", 4.0), ("rel_err", 3.25e-12)]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(body.contains("\"label\": \"sweep/sequential\""));
        assert!(body.contains("\\\"quoted\\\""));
        // Shortest-roundtrip serialization: no fixed-width padding, and
        // sub-1e-6 metrics survive instead of flushing to zero.
        assert!(body.contains("\"mean_ms\": 12.5"));
        assert!(body.contains("\"speedup\": 2"));
        assert!(body.contains("\"rel_err\": 0.00000000000325"));
        assert!(body.contains("\"benchmarks\"") && body.contains("\"metrics\""));
    }
}
