//! Parallel scenario sweep engine.
//!
//! A paper-style evaluation is a grid of {cooling configuration × thermal
//! model × device stack × workload mix × DTM scheme} MEMSpot runs. Since the expensive
//! level-1 characterizations live in a process-wide
//! [`CharStore`](memtherm::sim::characterize::CharStore) — keyed by (mix,
//! mode, budget, geometry), *not* by cooling or policy — every grid cell is
//! fully independent: [`SweepRunner`] therefore parallelizes at **cell**
//! granularity (one {cooling, model, mix, policy} run per unit of work).
//! Workers claim contiguous *chunks* of cells through a shared atomic
//! cursor, so grids far larger than the core count load-balance without a
//! scheduler thread (`std::thread::scope`; the container has no external
//! thread-pool crate). Claims are *deficit-aware* (guided
//! self-scheduling): each claim takes an even share of half the remaining
//! queue, so early claims are wide and the tail drains in ever-smaller
//! steps — a slow cell near the end strands at most one worker for one
//! cell, not a whole fixed-size chunk. One shared store per sweep means W1@AOHS and W1@FDHS
//! characterize each design point exactly once per process, whichever worker
//! gets there first; racing workers block on the in-flight computation
//! instead of duplicating it.
//!
//! Results come back in deterministic grid order regardless of which worker
//! finished first, and — because level-1 runs are deterministic functions of
//! their store key — are bit-identical between sequential and parallel
//! execution. [`SweepOutcome`] carries per-cell wall-clock times and the
//! store's hit/miss counters so callers can see both the load balance and
//! how much level-1 work the sharing saved.
//!
//! Within each claimed chunk the runner picks an execution tier
//! ([`SweepExecution`]): the per-cell [`MemSpot`] engine, or (the default)
//! the batched lockstep engine
//! ([`BatchedSimEngine`](memtherm::sim::batch::BatchedSimEngine)) which
//! steps the whole chunk's scenes through shared lane matrices —
//! optionally fanning the lanes across worker threads
//! ([`SweepExecution::lane_parallel`]) — and fast-forwards cells
//! analytically, both at a thermal steady state and through verified
//! threshold-policy limit cycles ([`SweepOutcome::periodic_cycles`]
//! counts the latter). Per-cell trajectories are independent of lane
//! composition, so the grid results remain deterministic for any thread
//! or chunk configuration.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cpu_model::CpuConfig;
use fbdimm_sim::FbdimmConfig;
use memtherm::prelude::*;
use workloads::WorkloadMix;

use crate::ch4::{MatrixRun, PolicySpec};

/// One scenario of the sweep grid: a cooling configuration and thermal
/// model choice applied to one workload mix, evaluated under a list of DTM
/// policies (each policy becomes one independent grid cell; the cells share
/// the mix's level-1 characterization through the sweep's `CharStore`).
#[derive(Debug, Clone)]
pub struct SweepScenario {
    /// Cooling configuration.
    pub cooling: CoolingConfig,
    /// Use the integrated thermal model.
    pub integrated: bool,
    /// Optional thermal-interaction degree override (integrated model only).
    pub interaction_degree: Option<f64>,
    /// Device-stack topology each DIMM position holds (the stacked-scenario
    /// axis: FBDIMM pairs, DDR4/5 rank pairs, 3D stacks).
    pub stack: StackKind,
    /// The workload mix to run.
    pub mix: WorkloadMix,
    /// The policies to evaluate, in order.
    pub specs: Vec<PolicySpec>,
    /// Optional DTM cadence override, seconds: sets both the simulation
    /// window and the DTM interval (the paper's native operating point is
    /// 10 ms; relay-style policies are swept at multi-second cadences).
    /// `None` keeps the scale's default cadence.
    pub dtm_interval_s: Option<f64>,
}

impl SweepScenario {
    /// A scenario under the isolated thermal model with the legacy FBDIMM
    /// stack.
    pub fn isolated(cooling: CoolingConfig, mix: WorkloadMix, specs: Vec<PolicySpec>) -> Self {
        SweepScenario {
            cooling,
            integrated: false,
            interaction_degree: None,
            stack: StackKind::Fbdimm,
            mix,
            specs,
            dtm_interval_s: None,
        }
    }

    /// A scenario under the isolated thermal model with an explicit device
    /// stack (rank pairs, 3D stacks).
    pub fn stacked(cooling: CoolingConfig, stack: StackKind, mix: WorkloadMix, specs: Vec<PolicySpec>) -> Self {
        SweepScenario { stack, ..Self::isolated(cooling, mix, specs) }
    }

    /// Overrides the scenario's DTM cadence: both the simulation window and
    /// the DTM decision interval become `dt_s` seconds.
    pub fn with_cadence(mut self, dt_s: f64) -> Self {
        self.dtm_interval_s = Some(dt_s);
        self
    }

    /// Number of grid cells (policy runs) this scenario contains.
    pub fn cells(&self) -> usize {
        self.specs.len()
    }
}

/// How the runner executes the grid's cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepExecution {
    /// One [`MemSpot`] run per cell — the reference per-cell engine. Cells
    /// fan across the runner's thread pool in claimed chunks.
    PerCell,
    /// Cells run through the
    /// [`BatchedSimEngine`](memtherm::sim::batch::BatchedSimEngine): scenes
    /// step in lockstep over shared lane matrices and steady cells
    /// fast-forward (per [`SweepRunner::with_batch_options`]).
    Batched {
        /// Lane-level worker threads inside the batched engine. With `1`
        /// the runner claims chunks of cells across its own thread pool and
        /// each chunk is batched single-threaded (the legacy dispatch);
        /// with `> 1` the whole grid becomes one batch whose lockstep
        /// lanes — column-chunked if the grid degenerates to one lane —
        /// fan across this many workers
        /// ([`BatchedSimEngine::run_with_workers`](memtherm::sim::batch::BatchedSimEngine::run_with_workers)).
        /// Either way the results are bit-identical.
        lane_workers: usize,
    },
}

impl Default for SweepExecution {
    fn default() -> Self {
        SweepExecution::batched()
    }
}

impl SweepExecution {
    /// The default batched tier: chunked dispatch across the runner's
    /// thread pool, each chunk batched on its worker's thread.
    pub fn batched() -> Self {
        SweepExecution::Batched { lane_workers: 1 }
    }

    /// The lane-parallel batched tier: the whole grid in one batch, its
    /// lanes fanned across `workers` threads.
    pub fn lane_parallel(workers: usize) -> Self {
        SweepExecution::Batched { lane_workers: workers.max(1) }
    }
}

/// Outcome of a sweep: the per-cell results in grid order plus timing and
/// characterization-sharing statistics.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One entry per grid cell, ordered scenario-major then policy order.
    pub runs: Vec<MatrixRun>,
    /// Wall-clock duration of the whole sweep, seconds.
    pub wall_clock_s: f64,
    /// Number of worker threads used.
    pub threads: usize,
    /// Per-cell wall-clock times, seconds, aligned with `runs`.
    pub cell_wall_clock_s: Vec<f64>,
    /// Level-1 lookups served from the shared `CharStore`.
    pub char_store_hits: u64,
    /// Level-1 lookups that had to run the closed-loop simulation.
    pub char_store_misses: u64,
    /// Windows replayed analytically by the steady-state fast-forward,
    /// summed over all cells (always 0 under [`SweepExecution::PerCell`]).
    pub fast_forwarded_windows: u64,
    /// Number of cells that engaged the fast-forward at least once.
    pub fast_forwarded_cells: usize,
    /// Whole limit cycles replayed analytically by the periodic
    /// fast-forward, summed over all cells.
    pub periodic_cycles: u64,
    /// Pseudo-cycles replayed by the envelope fast-forward (closed-form
    /// frozen-plan jumps plus band-confined slipping orbits), summed over
    /// all cells.
    pub envelope_cycles: u64,
    /// Windows advanced literally (stepped, not replayed analytically),
    /// summed over all cells. `stepped_windows + fast_forwarded_windows` is
    /// the exact simulated window count — conserved across every execution
    /// tier.
    pub stepped_windows: u64,
    /// Wall-clock nanoseconds the cells spent in cycle/steadiness
    /// detection, summed over all cells (sampled, extrapolated).
    pub detector_ns: u64,
    /// Wall-clock nanoseconds spent verifying candidate cycles and fitting
    /// envelope bands, summed over all cells.
    pub verify_ns: u64,
    /// Wall-clock nanoseconds spent inside analytic replay (steady,
    /// periodic and envelope fast-forward), summed over all cells.
    pub replay_ns: u64,
}

/// Fans a grid of MEMSpot cells across worker threads.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
    /// Store shared by every cell; `None` allocates a fresh in-memory store
    /// per [`SweepRunner::run`]. Inject a
    /// [`CharStore::with_disk_cache`]-backed store to persist level-1 work
    /// across processes.
    store: Option<Arc<CharStore>>,
    execution: SweepExecution,
    batch_options: BatchOptions,
}

/// One unit of sweep work: a single {scenario, policy} grid cell.
#[derive(Debug, Clone, Copy)]
struct SweepCell<'a> {
    scenario: &'a SweepScenario,
    spec: &'a PolicySpec,
}

impl SweepRunner {
    /// A runner using all available cores.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        SweepRunner {
            threads,
            store: None,
            execution: SweepExecution::default(),
            batch_options: BatchOptions::default(),
        }
    }

    /// A runner with an explicit worker count (1 = sequential; used as the
    /// baseline of the speedup measurements).
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner { threads: threads.max(1), ..Self::new() }
    }

    /// Selects how chunks of cells are executed (default:
    /// [`SweepExecution::Batched`]).
    pub fn with_execution(mut self, execution: SweepExecution) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the batched engine's options (fast-forward toggle, convergence
    /// radius); ignored under [`SweepExecution::PerCell`]. Pass
    /// [`BatchOptions::literal`] for results bit-identical to the per-cell
    /// engine.
    pub fn with_batch_options(mut self, options: BatchOptions) -> Self {
        self.batch_options = options;
        self
    }

    /// Makes every sweep of this runner share `store` instead of allocating
    /// a fresh in-memory store per run — with a disk-backed store
    /// ([`CharStore::with_disk_cache`]), repeated sweeps skip level-1
    /// characterization entirely once the cache file is warm.
    pub fn with_char_store(mut self, store: Arc<CharStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The execution tier this runner uses inside each chunk.
    pub fn execution(&self) -> SweepExecution {
        self.execution
    }

    /// Runs every cell of the grid and returns the per-cell results in
    /// deterministic grid order (scenario-major, then the scenario's policy
    /// order), plus the sweep's timing and store statistics.
    ///
    /// `make_config` maps a scenario's cooling configuration to the MEMSpot
    /// configuration to run it under (typically `scale.memspot_config`);
    /// the scenario's thermal-model fields are applied on top.
    pub fn run(
        &self,
        scenarios: &[SweepScenario],
        make_config: impl Fn(CoolingConfig) -> MemSpotConfig + Sync,
    ) -> SweepOutcome {
        let start = Instant::now();
        let cpu = CpuConfig::paper_quad_core();
        let mem = FbdimmConfig::ddr2_667_paper();
        let store = self.store.clone().unwrap_or_else(|| Arc::new(CharStore::new()));
        // With an injected (possibly disk-backed, long-lived) store the
        // counters are cumulative; report this sweep's share as deltas.
        let (hits_before, misses_before) = (store.hits(), store.misses());

        // Pre-warm: every cell's window loop starts from its mix's
        // full-speed design point, so without this step the first cells of a
        // mix pile up on one in-flight store computation. Characterizing the
        // distinct (mix, budget) full-speed points in parallel up front
        // turns that head-of-line blocking into parallel level-1 work.
        let mut warm: Vec<(&SweepScenario, u64)> = Vec::new();
        for scenario in scenarios {
            let budget = make_config(scenario.cooling).characterization_budget;
            if !warm.iter().any(|(s, b)| s.mix.id == scenario.mix.id && *b == budget) {
                warm.push((scenario, budget));
            }
        }
        parallel_map(self.threads, &warm, |(scenario, budget)| {
            let mut table = CharacterizationTable::with_store(
                cpu.clone(),
                mem,
                scenario.mix.id.clone(),
                scenario.mix.apps.clone(),
                *budget,
                Arc::clone(&store),
            );
            table.point(&RunningMode::full_speed(&cpu));
        });

        let cells: Vec<SweepCell> = scenarios
            .iter()
            .flat_map(|scenario| scenario.specs.iter().map(move |spec| SweepCell { scenario, spec }))
            .collect();
        // Small grids claim one cell at a time — cell runtimes vary by tens
        // of percent across policies/mixes, and a multi-cell claim at the
        // tail strands one worker with two heavy cells. Grids ≫ cores
        // amortize cursor traffic with multi-cell claims while still leaving
        // ≥ ~8 claims per worker for load balancing.
        let timed: Vec<(MatrixRun, f64, CellRunStats)> = match self.execution {
            SweepExecution::PerCell => {
                // The cap keeps even the widest (first) guided claims at
                // ≥ ~8 claims per worker; small grids degenerate to
                // one-cell claims — see the chunk-size comment at the top
                // of the module.
                let chunk = (cells.len() / (self.threads * 8)).max(1);
                parallel_map_chunked(self.threads, chunk, &cells, |cell| {
                    let cell_start = Instant::now();
                    let run = run_cell(cell, &cpu, mem, &make_config, &store);
                    (run, cell_start.elapsed().as_secs_f64(), CellRunStats::default())
                })
            }
            SweepExecution::Batched { lane_workers } if lane_workers > 1 => {
                // Lane-parallel dispatch: the whole grid becomes one batch
                // and the batched engine itself fans the lockstep lanes
                // (column-chunked when the grid collapses into one lane)
                // across `lane_workers` threads. One batch maximizes lane
                // width — the wider the lane, the longer the vectorized RC
                // row sweeps.
                let power = FbdimmPowerModel::paper_defaults();
                let cpu_power = PaperCpuPower::new();
                let grid_start = Instant::now();
                let runs = run_chunk_batched(
                    &cells,
                    &cpu,
                    mem,
                    &power,
                    &cpu_power,
                    &make_config,
                    &store,
                    &self.batch_options,
                    lane_workers,
                );
                // Lockstep stepping interleaves every cell, so per-cell
                // wall-clock is reported as the grid average.
                let secs = grid_start.elapsed().as_secs_f64() / cells.len().max(1) as f64;
                runs.into_iter().map(|(run, stats)| (run, secs, stats)).collect()
            }
            SweepExecution::Batched { .. } => {
                // Cells are deterministic regardless of lane composition, so
                // the chunk boundaries only shape performance, not results.
                // Wide chunks are what the lockstep lanes feed on (the inner
                // RC loop runs over a chunk's cells), so the guided
                // partition starts with the widest chunks the old fixed
                // split would have produced (~2 claims per worker) and lets
                // later chunks shrink with the remaining queue — the tail
                // then drains cell-by-cell instead of idling workers behind
                // one slow multi-cell chunk.
                let power = FbdimmPowerModel::paper_defaults();
                let cpu_power = PaperCpuPower::new();
                let chunks: Vec<&[SweepCell]> = guided_partition(&cells, self.threads);
                let per_chunk = parallel_map(self.threads, &chunks, |batch| {
                    let chunk_start = Instant::now();
                    let runs = run_chunk_batched(
                        batch,
                        &cpu,
                        mem,
                        &power,
                        &cpu_power,
                        &make_config,
                        &store,
                        &self.batch_options,
                        1,
                    );
                    // Lockstep stepping interleaves the chunk's cells, so
                    // per-cell wall-clock is reported as the chunk average.
                    let secs = chunk_start.elapsed().as_secs_f64() / batch.len().max(1) as f64;
                    (runs, secs)
                });
                per_chunk
                    .into_iter()
                    .flat_map(|(runs, secs)| runs.into_iter().map(move |(run, stats)| (run, secs, stats)))
                    .collect()
            }
        };
        let mut runs = Vec::with_capacity(timed.len());
        let mut cell_wall_clock_s = Vec::with_capacity(timed.len());
        let mut fast_forwarded_windows = 0u64;
        let mut fast_forwarded_cells = 0usize;
        let mut periodic_cycles = 0u64;
        let mut envelope_cycles = 0u64;
        let mut stepped_windows = 0u64;
        let mut detector_ns = 0u64;
        let mut verify_ns = 0u64;
        let mut replay_ns = 0u64;
        for (run, secs, stats) in timed {
            runs.push(run);
            cell_wall_clock_s.push(secs);
            fast_forwarded_windows += stats.fast_forwarded_windows;
            fast_forwarded_cells += usize::from(stats.fast_forwarded_windows > 0);
            periodic_cycles += stats.periodic_cycles;
            envelope_cycles += stats.envelope_cycles;
            stepped_windows += stats.stepped_windows;
            detector_ns += stats.detector_ns;
            verify_ns += stats.verify_ns;
            replay_ns += stats.replay_ns;
        }
        SweepOutcome {
            runs,
            wall_clock_s: start.elapsed().as_secs_f64(),
            threads: self.threads,
            cell_wall_clock_s,
            char_store_hits: store.hits() - hits_before,
            char_store_misses: store.misses() - misses_before,
            fast_forwarded_windows,
            fast_forwarded_cells,
            periodic_cycles,
            envelope_cycles,
            stepped_windows,
            detector_ns,
            verify_ns,
            replay_ns,
        }
    }
}

/// Order-preserving parallel map over a slice: `threads` scoped workers
/// claim items through a shared atomic index and the results are reassembled
/// in input order. The building block of [`SweepRunner`], also used directly
/// by experiment drivers whose unit of work is not a `MemSpot` grid cell
/// (e.g. the Chapter 5 platform runs).
pub fn parallel_map<T: Sync, R: Send>(threads: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    parallel_map_chunked(threads, 1, items, f)
}

/// Deficit-aware (guided self-scheduling) claim size: an even share of
/// half the remaining queue, capped at `max_chunk` and never below one
/// item. Early claims are wide — amortizing cursor traffic and feeding
/// wide lockstep lanes — and shrink as the queue drains, so the tail of a
/// sweep is parcelled out item-by-item instead of stranding one worker
/// behind a fixed-size chunk whose last cell happens to be slow.
fn guided_claim(remaining: usize, workers: usize, max_chunk: usize) -> usize {
    remaining.div_ceil(2 * workers.max(1)).min(max_chunk).max(1)
}

/// Splits `items` into the contiguous non-increasing chunk sequence the
/// guided claim would produce: the first chunks are as wide as the old
/// fixed partition (≈ 2 claims per worker) and later chunks shrink toward
/// single items as the remaining queue drains.
fn guided_partition<T>(items: &[T], workers: usize) -> Vec<&[T]> {
    let mut chunks = Vec::new();
    let mut rest = items;
    while !rest.is_empty() {
        let take = guided_claim(rest.len(), workers, rest.len());
        let (head, tail) = rest.split_at(take);
        chunks.push(head);
        rest = tail;
    }
    chunks
}

/// [`parallel_map`] with a chunked work queue: each cursor claim takes the
/// deficit-aware [`guided_claim`] size, with `chunk` as the per-claim
/// ceiling. For grids far larger than the core count the wide early claims
/// amortize the (already cheap) cursor traffic and keep cache locality,
/// while the shrinking tail claims keep every worker busy to the end.
pub fn parallel_map_chunked<T: Sync, R: Send>(
    threads: usize,
    chunk: usize,
    items: &[T],
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let workers = threads.max(1).min(items.len().max(1));
    let max_chunk = chunk.max(1);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, R)> = Vec::new();
                loop {
                    // The claim size depends on how much queue is left, so
                    // the cursor advances by compare-exchange instead of a
                    // blind fetch-add: a raced claim just re-reads the
                    // cursor and re-sizes against the new remainder.
                    let mut start = next.load(Ordering::Relaxed);
                    let take = loop {
                        if start >= items.len() {
                            break 0;
                        }
                        let take = guided_claim(items.len() - start, workers, max_chunk);
                        match next.compare_exchange_weak(start, start + take, Ordering::Relaxed, Ordering::Relaxed) {
                            Ok(_) => break take,
                            Err(cursor) => start = cursor,
                        }
                    };
                    if take == 0 {
                        break;
                    }
                    for (idx, item) in items.iter().enumerate().skip(start).take(take) {
                        done.push((idx, f(item)));
                    }
                }
                done
            }));
        }
        for handle in handles {
            for (idx, result) in handle.join().expect("parallel_map worker panicked") {
                slots[idx] = Some(result);
            }
        }
    });

    slots.into_iter().map(|s| s.expect("every item processed")).collect()
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

/// The MEMSpot configuration a scenario's cells run under: the scale's base
/// config with the scenario's stack, thermal-model and cadence overrides
/// applied on top.
fn scenario_config(
    scenario: &SweepScenario,
    make_config: &(impl Fn(CoolingConfig) -> MemSpotConfig + Sync),
) -> MemSpotConfig {
    let mut cfg = make_config(scenario.cooling).with_stack(scenario.stack);
    if scenario.integrated {
        cfg = cfg.with_integrated(scenario.interaction_degree);
    }
    if let Some(dt) = scenario.dtm_interval_s {
        cfg.window_s = dt;
        cfg.dtm_interval_s = dt;
    }
    cfg
}

fn run_cell(
    cell: &SweepCell,
    cpu: &CpuConfig,
    mem: FbdimmConfig,
    make_config: &(impl Fn(CoolingConfig) -> MemSpotConfig + Sync),
    store: &Arc<CharStore>,
) -> MatrixRun {
    let scenario = cell.scenario;
    let cfg = scenario_config(scenario, make_config);
    let limits = cfg.limits;
    let mut spot = MemSpot::with_store(cpu.clone(), mem, cfg, Arc::clone(store));
    // The sweep already runs one cell per core; rotation-averaged level-1
    // points must not fan out further (results are identical either way).
    spot.set_level1_rotation_threads(1);
    let mut policy = cell.spec.build(cpu, limits);
    let result = spot.run(&scenario.mix, policy.as_mut());
    MatrixRun { cooling: scenario.cooling.label(), workload: scenario.mix.id.clone(), policy: policy.name(), result }
}

/// Runs one claimed chunk of cells through a single [`BatchedSimEngine`]:
/// the chunk's scenes are grouped into lockstep lanes and cells that reach
/// a steady state fast-forward (per `options`). With `lane_workers > 1`
/// the engine fans the lanes across that many threads; results are
/// bit-identical either way. Results come back in chunk order, one per
/// cell, each with its execution counters.
#[allow(clippy::too_many_arguments)]
fn run_chunk_batched(
    chunk: &[SweepCell],
    cpu: &CpuConfig,
    mem: FbdimmConfig,
    power: &FbdimmPowerModel,
    cpu_power: &PaperCpuPower,
    make_config: &(impl Fn(CoolingConfig) -> MemSpotConfig + Sync),
    store: &Arc<CharStore>,
    options: &BatchOptions,
    lane_workers: usize,
) -> Vec<(MatrixRun, CellRunStats)> {
    let mut batch = Vec::with_capacity(chunk.len());
    let mut labels = Vec::with_capacity(chunk.len());
    for cell in chunk {
        let scenario = cell.scenario;
        let cfg = scenario_config(scenario, make_config);
        let policy = cell.spec.build(cpu, cfg.limits);
        labels.push((scenario.cooling.label(), scenario.mix.id.clone(), policy.name()));
        batch.push(
            BatchCell::new(cpu, &mem, cfg, scenario.mix.clone(), policy, Arc::clone(store))
                // One cell per worker already; see `run_cell`.
                .with_rotation_threads(1),
        );
    }
    let engine = BatchedSimEngine::new(cpu, &mem, power, cpu_power);
    engine
        .run_with_workers(batch, options, lane_workers)
        .into_iter()
        .zip(labels)
        .map(|((result, stats), (cooling, workload, policy))| (MatrixRun { cooling, workload, policy, result }, stats))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use workloads::mixes;

    fn grid() -> Vec<SweepScenario> {
        let specs = vec![PolicySpec::NoLimit, PolicySpec::Ts];
        vec![
            SweepScenario::isolated(CoolingConfig::aohs_1_5(), mixes::w1(), specs.clone()),
            SweepScenario::isolated(CoolingConfig::fdhs_1_0(), mixes::w1(), specs.clone()),
            SweepScenario::isolated(CoolingConfig::aohs_1_5(), mixes::w6(), specs),
        ]
    }

    #[test]
    fn results_come_back_in_grid_order_regardless_of_threads() {
        let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
        let sequential = SweepRunner::with_threads(1).run(&grid(), make);
        let parallel = SweepRunner::with_threads(4).run(&grid(), make);
        assert_eq!(sequential.runs.len(), 6);
        assert_eq!(parallel.runs.len(), 6);
        let order: Vec<(String, String, String)> =
            sequential.runs.iter().map(|r| (r.cooling.clone(), r.workload.clone(), r.policy.clone())).collect();
        let parallel_order: Vec<(String, String, String)> =
            parallel.runs.iter().map(|r| (r.cooling.clone(), r.workload.clone(), r.policy.clone())).collect();
        assert_eq!(order, parallel_order);
        assert_eq!(order[0], ("AOHS_1.5".to_string(), "W1".to_string(), "No-limit".to_string()));
    }

    #[test]
    fn parallel_results_match_sequential_results_exactly() {
        // Cells are deterministic and level-1 points are deterministic
        // functions of their store key, so neither parallelism nor the
        // shared store may change any simulated quantity.
        let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
        let a = SweepRunner::with_threads(1).run(&grid(), make);
        let b = SweepRunner::with_threads(4).run(&grid(), make);
        for (x, y) in a.runs.iter().zip(b.runs.iter()) {
            assert_eq!(x.result, y.result, "{}/{}/{} diverged", x.cooling, x.workload, x.policy);
        }
    }

    #[test]
    fn shared_store_reports_hits_on_grids_that_revisit_a_mix() {
        // W1 appears under both cooling configs and under two policies per
        // scenario: the level-1 points must be computed once and then hit.
        let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
        let outcome = SweepRunner::with_threads(2).run(&grid(), make);
        assert!(outcome.char_store_hits > 0, "expected level-1 dedup across cells");
        assert!(outcome.char_store_misses > 0);
        // Every cell carries its wall-clock measurement, and no cell takes
        // longer than the sweep (pre-warm time is outside the cells).
        assert_eq!(outcome.cell_wall_clock_s.len(), outcome.runs.len());
        assert!(outcome.cell_wall_clock_s.iter().all(|&s| s > 0.0 && s <= outcome.wall_clock_s));
    }

    #[test]
    fn batched_execution_matches_the_per_cell_engine_bit_for_bit() {
        // With fast-forward off the batched tier is purely a memory-layout
        // transformation; every simulated quantity must carry identical
        // bits to the per-cell engine, for any chunking.
        let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
        let per_cell = SweepRunner::with_threads(2).with_execution(SweepExecution::PerCell).run(&grid(), make);
        let literal = SweepRunner::with_threads(3).with_batch_options(BatchOptions::literal()).run(&grid(), make);
        assert_eq!(per_cell.fast_forwarded_windows, 0);
        assert_eq!(per_cell.fast_forwarded_cells, 0);
        assert_eq!(literal.fast_forwarded_windows, 0);
        for (x, y) in per_cell.runs.iter().zip(literal.runs.iter()) {
            assert_eq!(x.result, y.result, "{}/{}/{} diverged", x.cooling, x.workload, x.policy);
        }
    }

    #[test]
    fn lane_parallel_execution_matches_single_thread_batched_bit_for_bit() {
        // Lanes are independent, so fanning them across workers (including
        // column-chunking when the grid degenerates to one lane) must not
        // change a single bit of any cell's result.
        let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
        let single = SweepRunner::with_threads(1).with_batch_options(BatchOptions::literal()).run(&grid(), make);
        for workers in [2, 4] {
            let parallel = SweepRunner::with_threads(1)
                .with_execution(SweepExecution::lane_parallel(workers))
                .with_batch_options(BatchOptions::literal())
                .run(&grid(), make);
            assert_eq!(single.runs.len(), parallel.runs.len());
            for (x, y) in single.runs.iter().zip(parallel.runs.iter()) {
                assert_eq!(
                    x.result, y.result,
                    "{}/{}/{} diverged under {workers} lane workers",
                    x.cooling, x.workload, x.policy
                );
            }
        }
    }

    #[test]
    fn chunked_map_matches_sequential_map_for_any_chunk_size() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for chunk in [0, 1, 2, 5, 36, 37, 1000] {
            let got = parallel_map_chunked(4, chunk, &items, |x| x * x);
            assert_eq!(got, expected, "chunk {chunk}");
        }
    }

    #[test]
    fn guided_claims_shrink_as_the_queue_drains() {
        // An even share of half the remaining queue, capped and floored.
        assert_eq!(guided_claim(100, 4, usize::MAX), 13);
        assert_eq!(guided_claim(100, 4, 5), 5);
        assert_eq!(guided_claim(7, 4, usize::MAX), 1);
        assert_eq!(guided_claim(1, 4, 1000), 1);
        assert_eq!(guided_claim(1000, 1, usize::MAX), 500);
        // Degenerate worker counts never divide by zero or claim nothing.
        assert_eq!(guided_claim(10, 0, usize::MAX), 5);
        // Claims are non-increasing as the queue drains, for any cap.
        for max_chunk in [1, 3, 16, usize::MAX] {
            let mut previous = usize::MAX;
            for remaining in (1..=64).rev() {
                let claim = guided_claim(remaining, 3, max_chunk);
                assert!(claim >= 1 && claim <= remaining.min(max_chunk));
                assert!(claim <= previous, "claim grew from {previous} to {claim} at {remaining} remaining");
                previous = claim;
            }
        }
    }

    #[test]
    fn guided_partition_is_ordered_nonempty_and_non_increasing() {
        for n in [1usize, 2, 7, 37, 100] {
            let items: Vec<usize> = (0..n).collect();
            let chunks = guided_partition(&items, 4);
            let flat: Vec<usize> = chunks.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, items, "partition of {n} drops or reorders items");
            assert!(chunks.iter().all(|c| !c.is_empty()));
            for pair in chunks.windows(2) {
                assert!(pair[0].len() >= pair[1].len(), "chunk sizes must not grow toward the tail");
            }
            // The first chunk matches the old fixed split's width (an even
            // share of the grid across ~2 claims per worker).
            assert_eq!(chunks[0].len(), n.div_ceil(8).max(1));
            // The tail drains in single items.
            assert_eq!(chunks.last().unwrap().len(), 1);
        }
        assert!(guided_partition::<usize>(&[], 4).is_empty());
    }

    #[test]
    fn stacked_scenarios_ride_the_same_grid() {
        let specs = vec![PolicySpec::NoLimit];
        let scenarios = vec![
            SweepScenario::isolated(CoolingConfig::aohs_1_5(), mixes::w1(), specs.clone()),
            SweepScenario::stacked(CoolingConfig::aohs_1_5(), StackKind::stacked4(), mixes::w1(), specs.clone()),
            SweepScenario::stacked(CoolingConfig::aohs_1_5(), StackKind::RankPair, mixes::w1(), specs),
        ];
        let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
        let outcome = SweepRunner::with_threads(2).run(&scenarios, make);
        assert_eq!(outcome.runs.len(), 3);
        assert_eq!(outcome.runs[0].result.stack, "fbdimm");
        assert_eq!(outcome.runs[1].result.stack, "3d-4h");
        assert_eq!(outcome.runs[2].result.stack, "rank-pair");
        // The 4-high stack resolves five layers per position and heats the
        // inner die (next to the base) beyond the spreader-side outer die.
        let stacked = &outcome.runs[1].result;
        let hot = stacked.hottest_position().expect("peaks exist");
        assert_eq!(hot.layers_c.len(), 5);
        assert!(hot.layers_c[1] > hot.layers_c[4], "inner {:.1} vs outer {:.1}", hot.layers_c[1], hot.layers_c[4]);
        // The rank pair has no buffer die: its AMB maximum is NaN, not 0.0.
        assert!(outcome.runs[2].result.max_amb_c.is_nan());
        assert!(outcome.runs[2].result.max_dram_c > 50.0);
        // Topologies share level-1 characterizations — the store key knows
        // nothing about the thermal stack.
        assert!(outcome.char_store_hits > 0, "stacked cells must reuse the mix's level-1 points");
    }

    #[test]
    fn runner_defaults_to_available_parallelism() {
        assert!(SweepRunner::new().threads() >= 1);
        assert_eq!(SweepRunner::with_threads(0).threads(), 1);
        assert_eq!(SweepRunner::new().execution(), SweepExecution::Batched { lane_workers: 1 });
        assert_eq!(SweepExecution::lane_parallel(0), SweepExecution::Batched { lane_workers: 1 });
        assert_eq!(SweepExecution::lane_parallel(4), SweepExecution::Batched { lane_workers: 4 });
        assert_eq!(SweepScenario::isolated(CoolingConfig::aohs_1_5(), mixes::w1(), vec![PolicySpec::Ts]).cells(), 1);
    }
}
