//! Parallel scenario sweep engine.
//!
//! A paper-style evaluation is a grid of {cooling configuration × thermal
//! model × workload mix × DTM scheme} MEMSpot runs. The cells are
//! independent except for one shared artifact: the level-1 characterization
//! table of a workload mix, which every policy run of that mix reuses.
//! [`SweepRunner`] therefore parallelizes at *group* granularity — one group
//! per {cooling, model, mix} scenario, each running its policy list on one
//! worker with a private `MemSpot` — and fans the groups across OS threads
//! with a work-stealing index (`std::thread::scope`; the container has no
//! external thread-pool crate). Results come back in deterministic grid
//! order regardless of which worker finished first.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cpu_model::CpuConfig;
use fbdimm_sim::FbdimmConfig;
use memtherm::prelude::*;
use workloads::WorkloadMix;

use crate::ch4::{MatrixRun, PolicySpec};

/// One scenario of the sweep grid: a cooling configuration and thermal
/// model choice applied to one workload mix, evaluated under a list of DTM
/// policies (which share the mix's level-1 characterization).
#[derive(Debug, Clone)]
pub struct SweepScenario {
    /// Cooling configuration.
    pub cooling: CoolingConfig,
    /// Use the integrated thermal model.
    pub integrated: bool,
    /// Optional thermal-interaction degree override (integrated model only).
    pub interaction_degree: Option<f64>,
    /// The workload mix to run.
    pub mix: WorkloadMix,
    /// The policies to evaluate, in order.
    pub specs: Vec<PolicySpec>,
}

impl SweepScenario {
    /// A scenario under the isolated thermal model.
    pub fn isolated(cooling: CoolingConfig, mix: WorkloadMix, specs: Vec<PolicySpec>) -> Self {
        SweepScenario { cooling, integrated: false, interaction_degree: None, mix, specs }
    }

    /// Number of grid cells (policy runs) this scenario contains.
    pub fn cells(&self) -> usize {
        self.specs.len()
    }
}

/// Outcome of a sweep: the per-cell results in grid order plus the
/// wall-clock time the sweep took.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// One entry per grid cell, ordered scenario-major then policy order.
    pub runs: Vec<MatrixRun>,
    /// Wall-clock duration of the whole sweep, seconds.
    pub wall_clock_s: f64,
    /// Number of worker threads used.
    pub threads: usize,
}

/// Fans a grid of MEMSpot scenarios across worker threads.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// A runner using all available cores.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        SweepRunner { threads }
    }

    /// A runner with an explicit worker count (1 = sequential; used as the
    /// baseline of the speedup measurements).
    pub fn with_threads(threads: usize) -> Self {
        SweepRunner { threads: threads.max(1) }
    }

    /// The number of worker threads this runner uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every scenario of the grid and returns the per-cell results in
    /// deterministic grid order (scenario-major, then the scenario's policy
    /// order), plus the sweep's wall-clock time.
    ///
    /// `make_config` maps a scenario's cooling configuration to the MEMSpot
    /// configuration to run it under (typically `scale.memspot_config`);
    /// the scenario's thermal-model fields are applied on top.
    pub fn run(
        &self,
        scenarios: &[SweepScenario],
        make_config: impl Fn(CoolingConfig) -> MemSpotConfig + Sync,
    ) -> SweepOutcome {
        let start = Instant::now();
        let cpu = CpuConfig::paper_quad_core();
        let mem = FbdimmConfig::ddr2_667_paper();
        let groups = parallel_map(self.threads, scenarios, |scenario| run_scenario(scenario, &cpu, mem, &make_config));
        let runs = groups.into_iter().flatten().collect();
        SweepOutcome { runs, wall_clock_s: start.elapsed().as_secs_f64(), threads: self.threads }
    }
}

/// Order-preserving parallel map over a slice: `threads` scoped workers
/// claim items through a shared atomic index and the results are reassembled
/// in input order. The building block of [`SweepRunner`], also used directly
/// by experiment drivers whose unit of work is not a `MemSpot` grid cell
/// (e.g. the Chapter 5 platform runs).
pub fn parallel_map<T: Sync, R: Send>(threads: usize, items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let workers = threads.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut done: Vec<(usize, R)> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(idx) else { break };
                    done.push((idx, f(item)));
                }
                done
            }));
        }
        for handle in handles {
            for (idx, result) in handle.join().expect("parallel_map worker panicked") {
                slots[idx] = Some(result);
            }
        }
    });

    slots.into_iter().map(|s| s.expect("every item processed")).collect()
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

fn run_scenario(
    scenario: &SweepScenario,
    cpu: &CpuConfig,
    mem: FbdimmConfig,
    make_config: &(impl Fn(CoolingConfig) -> MemSpotConfig + Sync),
) -> Vec<MatrixRun> {
    let mut cfg = make_config(scenario.cooling);
    if scenario.integrated {
        cfg = cfg.with_integrated(scenario.interaction_degree);
    }
    let limits = cfg.limits;
    let mut spot = MemSpot::with_hardware(cpu.clone(), mem, cfg);
    scenario
        .specs
        .iter()
        .map(|spec| {
            let mut policy = spec.build(cpu, limits);
            let result = spot.run(&scenario.mix, policy.as_mut());
            MatrixRun {
                cooling: scenario.cooling.label(),
                workload: scenario.mix.id.clone(),
                policy: policy.name(),
                result,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Scale;
    use workloads::mixes;

    fn grid() -> Vec<SweepScenario> {
        let specs = vec![PolicySpec::NoLimit, PolicySpec::Ts];
        vec![
            SweepScenario::isolated(CoolingConfig::aohs_1_5(), mixes::w1(), specs.clone()),
            SweepScenario::isolated(CoolingConfig::fdhs_1_0(), mixes::w1(), specs.clone()),
            SweepScenario::isolated(CoolingConfig::aohs_1_5(), mixes::w6(), specs),
        ]
    }

    #[test]
    fn results_come_back_in_grid_order_regardless_of_threads() {
        let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
        let sequential = SweepRunner::with_threads(1).run(&grid(), make);
        let parallel = SweepRunner::with_threads(4).run(&grid(), make);
        assert_eq!(sequential.runs.len(), 6);
        assert_eq!(parallel.runs.len(), 6);
        let order: Vec<(String, String, String)> =
            sequential.runs.iter().map(|r| (r.cooling.clone(), r.workload.clone(), r.policy.clone())).collect();
        let parallel_order: Vec<(String, String, String)> =
            parallel.runs.iter().map(|r| (r.cooling.clone(), r.workload.clone(), r.policy.clone())).collect();
        assert_eq!(order, parallel_order);
        assert_eq!(order[0], ("AOHS_1.5".to_string(), "W1".to_string(), "No-limit".to_string()));
    }

    #[test]
    fn parallel_results_match_sequential_results_exactly() {
        // Each scenario is deterministic and runs on exactly one worker, so
        // parallelism must not change any simulated quantity.
        let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
        let a = SweepRunner::with_threads(1).run(&grid(), make);
        let b = SweepRunner::with_threads(4).run(&grid(), make);
        for (x, y) in a.runs.iter().zip(b.runs.iter()) {
            assert_eq!(x.result, y.result, "{}/{}/{} diverged", x.cooling, x.workload, x.policy);
        }
    }

    #[test]
    fn runner_defaults_to_available_parallelism() {
        assert!(SweepRunner::new().threads() >= 1);
        assert_eq!(SweepRunner::with_threads(0).threads(), 1);
        assert_eq!(SweepScenario::isolated(CoolingConfig::aohs_1_5(), mixes::w1(), vec![PolicySpec::Ts]).cells(), 1);
    }
}
