//! Chapter 4 experiments: the simulation study of the DTM schemes.

use memtherm::dtm::policy::DtmPolicy;
use memtherm::prelude::*;
use memtherm::sim::memspot::MemSpotResult;

use crate::harness::{f1, f3, mean, Scale, Table};
use crate::sweep::{SweepRunner, SweepScenario};

/// Which policy variant a matrix run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicySpec {
    /// No thermal limit (normalization baseline).
    NoLimit,
    /// DTM-TS.
    Ts,
    /// DTM-BW, optionally PID-driven.
    Bw {
        /// Use the PID formal controller.
        pid: bool,
    },
    /// DTM-ACG, optionally PID-driven.
    Acg {
        /// Use the PID formal controller.
        pid: bool,
    },
    /// DTM-CDVFS, optionally PID-driven.
    Cdvfs {
        /// Use the PID formal controller.
        pid: bool,
    },
    /// DTM-CBW: per-channel bandwidth caps keyed to each channel's hottest
    /// layer, optionally PID-driven.
    Cbw {
        /// Use the PID formal controller (one pair per channel).
        pid: bool,
    },
    /// DTM-MIG: migration-aware traffic steering away from the hottest
    /// DIMM position (global fail-safe on the DTM-BW ladder).
    Mig,
}

impl PolicySpec {
    /// The full set evaluated by Figure 4.3 (threshold and PID variants).
    pub fn figure_4_3_set() -> Vec<PolicySpec> {
        vec![
            PolicySpec::Ts,
            PolicySpec::Bw { pid: false },
            PolicySpec::Acg { pid: false },
            PolicySpec::Cdvfs { pid: false },
            PolicySpec::Bw { pid: true },
            PolicySpec::Acg { pid: true },
            PolicySpec::Cdvfs { pid: true },
        ]
    }

    /// The threshold-only set used by the integrated-model experiments.
    pub fn threshold_set() -> Vec<PolicySpec> {
        vec![
            PolicySpec::Ts,
            PolicySpec::Bw { pid: false },
            PolicySpec::Acg { pid: false },
            PolicySpec::Cdvfs { pid: false },
        ]
    }

    /// The spatially aware comparison set: the paper's global DTM-BW and
    /// DTM-ACG references next to the per-channel and migration-aware
    /// policies that exploit the resolved thermal field.
    pub fn spatial_set() -> Vec<PolicySpec> {
        vec![
            PolicySpec::Bw { pid: false },
            PolicySpec::Acg { pid: false },
            PolicySpec::Cbw { pid: false },
            PolicySpec::Cbw { pid: true },
            PolicySpec::Mig,
        ]
    }

    /// Builds the concrete policy object.
    pub fn build(self, cpu: &CpuConfig, limits: ThermalLimits) -> Box<dyn DtmPolicy> {
        match self {
            PolicySpec::NoLimit => Box::new(memtherm::dtm::NoLimit::new(cpu)),
            PolicySpec::Ts => Box::new(DtmTs::new(cpu.clone(), limits)),
            PolicySpec::Bw { pid: false } => Box::new(DtmBw::new(cpu.clone(), limits)),
            PolicySpec::Bw { pid: true } => Box::new(DtmBw::with_pid(cpu.clone(), limits)),
            PolicySpec::Acg { pid: false } => Box::new(DtmAcg::new(cpu.clone(), limits)),
            PolicySpec::Acg { pid: true } => Box::new(DtmAcg::with_pid(cpu.clone(), limits)),
            PolicySpec::Cdvfs { pid: false } => Box::new(DtmCdvfs::new(cpu.clone(), limits)),
            PolicySpec::Cdvfs { pid: true } => Box::new(DtmCdvfs::with_pid(cpu.clone(), limits)),
            PolicySpec::Cbw { pid: false } => Box::new(DtmCbw::new(cpu.clone(), limits)),
            PolicySpec::Cbw { pid: true } => Box::new(DtmCbw::with_pid(cpu.clone(), limits)),
            PolicySpec::Mig => Box::new(DtmMig::new(cpu.clone(), limits)),
        }
    }
}

/// One run of the Chapter 4 matrix.
#[derive(Debug, Clone)]
pub struct MatrixRun {
    /// Cooling configuration label.
    pub cooling: String,
    /// Workload mix identifier.
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Full simulation result.
    pub result: MemSpotResult,
}

/// Runs every mix under every policy (plus the no-limit baseline) for one
/// cooling configuration. Each mix becomes one [`SweepScenario`]; the
/// [`SweepRunner`] fans the individual {mix, policy} cells across cores,
/// and all cells of a mix share its level-1 characterization through the
/// sweep's `CharStore`.
pub fn run_matrix(
    scale: Scale,
    cooling: CoolingConfig,
    integrated: bool,
    interaction_degree: Option<f64>,
    specs: &[PolicySpec],
) -> Vec<MatrixRun> {
    let mut all_specs = vec![PolicySpec::NoLimit];
    all_specs.extend_from_slice(specs);
    let scenarios: Vec<SweepScenario> = scale
        .ch4_mixes()
        .into_iter()
        .map(|mix| SweepScenario {
            cooling,
            integrated,
            interaction_degree,
            stack: StackKind::Fbdimm,
            mix,
            specs: all_specs.clone(),
            dtm_interval_s: None,
        })
        .collect();
    SweepRunner::new().run(&scenarios, |cooling| scale.memspot_config(cooling)).runs
}

fn baseline<'a>(runs: &'a [MatrixRun], cooling: &str, workload: &str, policy: &str) -> Option<&'a MatrixRun> {
    runs.iter().find(|r| r.cooling == cooling && r.workload == workload && r.policy == policy)
}

/// Table 4.3: thermal emergency levels and the per-scheme running levels.
pub fn tab4_3() -> Table {
    let cpu = CpuConfig::paper_quad_core();
    let mut t = Table::new(
        "tab4_3",
        "Thermal emergency levels and default DTM settings (Table 4.3)",
        &["level", "AMB range degC", "DRAM range degC", "DTM-BW", "DTM-ACG cores", "DTM-CDVFS"],
    );
    let ranges_amb = ["(-,108)", "[108,109)", "[109,109.5)", "[109.5,110)", "[110,-)"];
    let ranges_dram = ["(-,83)", "[83,84)", "[84,84.5)", "[84.5,85)", "[85,-)"];
    for (i, level) in EmergencyLevel::ALL.iter().enumerate() {
        let bw = scheme_mode(DtmScheme::Bw, *level, &cpu);
        let acg = scheme_mode(DtmScheme::Acg, *level, &cpu);
        let cdvfs = scheme_mode(DtmScheme::Cdvfs, *level, &cpu);
        let bw_str = match bw.bandwidth_cap {
            None => "no limit".to_string(),
            Some(0.0) => "off".to_string(),
            Some(c) => format!("{:.1} GB/s", c / 1e9),
        };
        let cdvfs_str = if cdvfs.makes_progress() {
            format!("{:.1} GHz @ {:.2} V", cdvfs.op.freq_ghz, cdvfs.op.voltage)
        } else {
            "stopped".to_string()
        };
        t.push_row([
            level.to_string(),
            ranges_amb[i].to_string(),
            ranges_dram[i].to_string(),
            bw_str,
            acg.active_cores.to_string(),
            cdvfs_str,
        ]);
    }
    t
}

/// Table 4.4: processor power consumption per DTM running state.
pub fn tab4_4() -> Table {
    let power = PaperCpuPower::new();
    let ladder = CpuConfig::paper_quad_core().dvfs;
    let mut t = Table::new(
        "tab4_4",
        "Processor power consumption of DTM schemes (Table 4.4)",
        &["scheme", "setting", "power W"],
    );
    for n in 0..=4usize {
        t.push_row(["DTM-ACG", &format!("{n} active cores"), &f1(power.power_watts(n, &ladder.top()))]);
    }
    t.push_row(["DTM-CDVFS", "stopped", &f1(power.halted_watts())]);
    for i in (0..4).rev() {
        let op = ladder.point(i);
        t.push_row([
            "DTM-CDVFS",
            &format!("{:.2} V, {:.1} GHz", op.voltage, op.freq_ghz),
            &f1(power.power_watts(4, &op)),
        ]);
    }
    t
}

/// Figure 4.2: DTM-TS running time with varied thermal release point.
pub fn fig4_2(scale: Scale) -> Table {
    let mut t = Table::new(
        "fig4_2",
        "Performance of DTM-TS with varied TRP (normalized running time vs no thermal limit)",
        &["cooling", "swept TRP degC", "workload", "normalized time"],
    );
    let cases = [
        (CoolingConfig::fdhs_1_0(), "DRAM", vec![81.0, 82.0, 83.0, 84.0, 84.5]),
        (CoolingConfig::aohs_1_5(), "AMB", vec![106.0, 107.0, 108.0, 109.0, 109.5]),
    ];
    for (cooling, device, trps) in cases {
        let cfg = scale.memspot_config(cooling);
        let cpu = CpuConfig::paper_quad_core();
        let mut spot = MemSpot::with_hardware(cpu.clone(), FbdimmConfig::ddr2_667_paper(), cfg);
        for mix in scale.ch4_mixes() {
            let mut nolimit = memtherm::dtm::NoLimit::new(&cpu);
            let base = spot.run(&mix, &mut nolimit);
            for &trp in &trps {
                let limits = if device == "DRAM" {
                    ThermalLimits::paper_fbdimm().with_dram_trp(trp)
                } else {
                    ThermalLimits::paper_fbdimm().with_amb_trp(trp)
                };
                let mut ts = DtmTs::new(cpu.clone(), limits);
                let r = spot.run(&mix, &mut ts);
                t.push_row([
                    cooling.label(),
                    format!("{device} {trp:.1}"),
                    mix.id.clone(),
                    f3(r.normalized_time(&base)),
                ]);
            }
        }
    }
    t
}

fn normalized_table(
    id: &str,
    title: &str,
    scale: Scale,
    metric: impl Fn(&MemSpotResult, &MemSpotResult) -> f64,
    base_policy: &str,
    specs: &[PolicySpec],
) -> Table {
    let mut t = Table::new(id, title, &["cooling", "workload", "policy", "value"]);
    for cooling in [CoolingConfig::fdhs_1_0(), CoolingConfig::aohs_1_5()] {
        let runs = run_matrix(scale, cooling, false, None, specs);
        for r in &runs {
            if r.policy == base_policy {
                continue;
            }
            let Some(base) = baseline(&runs, &r.cooling, &r.workload, base_policy) else {
                continue;
            };
            t.push_row([r.cooling.clone(), r.workload.clone(), r.policy.clone(), f3(metric(&r.result, &base.result))]);
        }
    }
    t
}

/// Figure 4.3: normalized running time of all DTM schemes (± PID), both
/// cooling configurations, isolated thermal model.
pub fn fig4_3(scale: Scale) -> Table {
    normalized_table(
        "fig4_3",
        "Normalized running time for DTM schemes (vs no thermal limit)",
        scale,
        |r, b| r.normalized_time(b),
        "No-limit",
        &PolicySpec::figure_4_3_set(),
    )
}

/// Figure 4.4: normalized total memory traffic of all DTM schemes.
pub fn fig4_4(scale: Scale) -> Table {
    normalized_table(
        "fig4_4",
        "Normalized total memory traffic for DTM schemes (vs no thermal limit)",
        scale,
        |r, b| r.normalized_traffic(b),
        "No-limit",
        &PolicySpec::figure_4_3_set(),
    )
}

/// Figures 4.5–4.8: AMB temperature traces of W1 under AOHS_1.5 for DTM-TS,
/// DTM-BW, DTM-ACG and DTM-CDVFS (sampled every 10 s of the first 1000 s).
pub fn fig4_5_8(scale: Scale) -> Table {
    let cooling = CoolingConfig::aohs_1_5();
    let mut cfg = scale.memspot_config(cooling);
    cfg.record_temp_trace = true;
    let cpu = CpuConfig::paper_quad_core();
    let limits = cfg.limits;
    let mut spot = MemSpot::with_hardware(cpu.clone(), FbdimmConfig::ddr2_667_paper(), cfg);
    let mix = mixes::w1();

    let mut t = Table::new(
        "fig4_5_8",
        "AMB temperature of W1 under AOHS_1.5 (first 1000 s, 10 s samples)",
        &["scheme", "time s", "AMB degC", "active cores", "freq GHz"],
    );
    let schemes: Vec<(&str, Box<dyn DtmPolicy>)> = vec![
        ("DTM-TS", Box::new(DtmTs::new(cpu.clone(), limits))),
        ("DTM-BW", Box::new(DtmBw::new(cpu.clone(), limits))),
        ("DTM-ACG", Box::new(DtmAcg::new(cpu.clone(), limits))),
        ("DTM-CDVFS", Box::new(DtmCdvfs::new(cpu.clone(), limits))),
    ];
    for (name, mut policy) in schemes {
        let r = spot.run(&mix, policy.as_mut());
        for sample in r.temp_trace.iter().filter(|s| s.time_s <= 1000.0).step_by(10) {
            t.push_row([
                name.to_string(),
                f1(sample.time_s),
                f1(sample.amb_c),
                sample.active_cores.to_string(),
                f1(sample.freq_ghz),
            ]);
        }
    }
    t
}

/// Figure 4.9: normalized FBDIMM energy consumption (vs DTM-TS).
pub fn fig4_9(scale: Scale) -> Table {
    normalized_table(
        "fig4_9",
        "Normalized energy consumption of FBDIMM for DTM schemes (vs DTM-TS)",
        scale,
        |r, b| r.normalized_memory_energy(b),
        "DTM-TS",
        &PolicySpec::figure_4_3_set(),
    )
}

/// Figure 4.10: normalized processor energy consumption (vs DTM-TS).
pub fn fig4_10(scale: Scale) -> Table {
    normalized_table(
        "fig4_10",
        "Normalized energy consumption of processors for DTM schemes (vs DTM-TS)",
        scale,
        |r, b| r.normalized_cpu_energy(b),
        "DTM-TS",
        &PolicySpec::figure_4_3_set(),
    )
}

/// Figure 4.11: average normalized running time for different DTM intervals.
pub fn fig4_11(scale: Scale) -> Table {
    let intervals_ms = [1.0, 10.0, 20.0, 100.0];
    let mut t = Table::new(
        "fig4_11",
        "Normalized average running time for different DTM intervals (vs the 10 ms interval)",
        &["cooling", "policy", "interval ms", "normalized avg time"],
    );
    for cooling in [CoolingConfig::fdhs_1_0(), CoolingConfig::aohs_1_5()] {
        for spec in PolicySpec::threshold_set() {
            let cpu = CpuConfig::paper_quad_core();
            // Collect per-interval average running time over the mixes.
            let mut per_interval = Vec::new();
            for &interval in &intervals_ms {
                let mut cfg = scale.memspot_config(cooling);
                cfg.dtm_interval_s = interval / 1000.0;
                let limits = cfg.limits;
                let mut spot = MemSpot::with_hardware(cpu.clone(), FbdimmConfig::ddr2_667_paper(), cfg);
                let times: Vec<f64> = scale
                    .ch4_mixes()
                    .iter()
                    .map(|mix| {
                        let mut policy = spec.build(&cpu, limits);
                        spot.run(mix, policy.as_mut()).running_time_s
                    })
                    .collect();
                per_interval.push(mean(&times));
            }
            let reference = per_interval[1].max(1e-9); // 10 ms column
            for (i, &interval) in intervals_ms.iter().enumerate() {
                let name = spec.build(&cpu, ThermalLimits::paper_fbdimm()).name();
                t.push_row([cooling.label(), name, f1(interval), f3(per_interval[i] / reference)]);
            }
        }
    }
    t
}

/// Figure 4.12: normalized running time under the *integrated* thermal
/// model.
pub fn fig4_12(scale: Scale) -> Table {
    let mut t = Table::new(
        "fig4_12",
        "Normalized running time for DTM schemes under the integrated thermal model",
        &["cooling", "workload", "policy", "normalized time"],
    );
    for cooling in [CoolingConfig::fdhs_1_0(), CoolingConfig::aohs_1_5()] {
        let runs = run_matrix(scale, cooling, true, None, &PolicySpec::threshold_set());
        for r in &runs {
            if r.policy == "No-limit" {
                continue;
            }
            let Some(base) = baseline(&runs, &r.cooling, &r.workload, "No-limit") else { continue };
            t.push_row([
                r.cooling.clone(),
                r.workload.clone(),
                r.policy.clone(),
                f3(r.result.normalized_time(&base.result)),
            ]);
        }
    }
    t
}

fn interaction_runs(scale: Scale, degree: f64) -> Vec<MatrixRun> {
    run_matrix(scale, CoolingConfig::fdhs_1_0(), true, Some(degree), &PolicySpec::threshold_set())
}

/// Figure 4.13: average normalized running time for different degrees of
/// CPU→memory thermal interaction.
pub fn fig4_13(scale: Scale) -> Table {
    let mut t = Table::new(
        "fig4_13",
        "Average normalized running time with different degrees of thermal interaction (FDHS_1.0)",
        &["interaction degree", "policy", "avg normalized time"],
    );
    for degree in [1.0, 1.5, 2.0] {
        let runs = interaction_runs(scale, degree);
        for policy in ["DTM-TS", "DTM-BW", "DTM-ACG", "DTM-CDVFS"] {
            let values: Vec<f64> = runs
                .iter()
                .filter(|r| r.policy == policy)
                .filter_map(|r| {
                    baseline(&runs, &r.cooling, &r.workload, "No-limit").map(|b| r.result.normalized_time(&b.result))
                })
                .collect();
            t.push_row([f1(degree), policy.to_string(), f3(mean(&values))]);
        }
    }
    t
}

/// Figure 4.14: average performance improvement of DTM-ACG and DTM-CDVFS
/// over DTM-BW for different degrees of thermal interaction.
pub fn fig4_14(scale: Scale) -> Table {
    let mut t = Table::new(
        "fig4_14",
        "Average improvement of DTM-ACG / DTM-CDVFS over DTM-BW vs thermal-interaction degree (FDHS_1.0)",
        &["interaction degree", "policy", "improvement %"],
    );
    for degree in [1.0, 1.5, 2.0] {
        let runs = interaction_runs(scale, degree);
        for policy in ["DTM-ACG", "DTM-CDVFS"] {
            let improvements: Vec<f64> = runs
                .iter()
                .filter(|r| r.policy == policy)
                .filter_map(|r| {
                    baseline(&runs, &r.cooling, &r.workload, "DTM-BW")
                        .map(|bw| 100.0 * (1.0 - r.result.running_time_s / bw.result.running_time_s.max(1e-9)))
                })
                .collect();
            t.push_row([f1(degree), policy.to_string(), f1(mean(&improvements))]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab4_3_and_tab4_4_have_the_expected_shape() {
        let t = tab4_3();
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.cell("DTM-ACG cores", |r| r[0] == "L3"), Some("2"));
        let p = tab4_4();
        assert_eq!(p.cell("power W", |r| r[0] == "DTM-ACG" && r[1] == "4 active cores"), Some("260.0"));
        assert_eq!(p.cell("power W", |r| r[1].contains("0.95 V")), Some("80.6"));
    }

    #[test]
    fn policy_specs_build_the_right_policies() {
        let cpu = CpuConfig::paper_quad_core();
        let limits = ThermalLimits::paper_fbdimm();
        assert_eq!(PolicySpec::Ts.build(&cpu, limits).name(), "DTM-TS");
        assert_eq!(PolicySpec::Acg { pid: true }.build(&cpu, limits).name(), "DTM-ACG+PID");
        assert_eq!(PolicySpec::Cbw { pid: false }.build(&cpu, limits).name(), "DTM-CBW");
        assert_eq!(PolicySpec::Cbw { pid: true }.build(&cpu, limits).name(), "DTM-CBW+PID");
        assert_eq!(PolicySpec::Mig.build(&cpu, limits).name(), "DTM-MIG");
        assert_eq!(PolicySpec::figure_4_3_set().len(), 7);
        assert_eq!(PolicySpec::threshold_set().len(), 4);
        assert_eq!(PolicySpec::spatial_set().len(), 5);
    }

    #[test]
    #[ignore = "runs a smoke-scale simulation matrix (~seconds in release); exercised by the Criterion benches"]
    fn fig4_3_smoke_produces_sane_normalized_times() {
        let t = fig4_3(Scale::Smoke);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let v: f64 = row[3].parse().unwrap();
            assert!(v > 0.9 && v < 5.0, "normalized time {v} out of range");
        }
    }
}
