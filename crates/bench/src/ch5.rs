//! Chapter 5 experiments: the server-platform case study.

use platform_emu::{Measurement, PlatformExperiment, PlatformPolicy, PolicyKind, Server, TimeSliceModel};
use workloads::mixes;

use crate::harness::{f1, f3, mean, Scale, Table};

fn experiment(scale: Scale, server: Server) -> PlatformExperiment {
    PlatformExperiment::with_scale(server, scale.platform_runs_per_app(), scale.platform_instruction_scale())
}

fn ch5_mixes(scale: Scale) -> Vec<workloads::WorkloadMix> {
    match scale {
        Scale::Smoke => vec![mixes::w1(), mixes::w8()],
        _ => mixes::all_ch4_mixes(),
    }
}

fn policy_runs(
    scale: Scale,
    server: Server,
    mixes_list: &[workloads::WorkloadMix],
) -> Vec<(String, String, Measurement)> {
    // Fan the mixes across cores; each worker owns a private experiment
    // (characterization tables are per-mix, so nothing is lost by splitting).
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let groups = crate::sweep::parallel_map(threads, mixes_list, |mix| {
        let mut exp = experiment(scale, server.clone());
        let mut out = Vec::new();
        let base = exp.run_no_limit(mix);
        out.push((mix.id.clone(), "No-limit".to_string(), base.measurement));
        for kind in PolicyKind::ALL {
            let run = exp.run_policy(mix, kind);
            out.push((mix.id.clone(), kind.to_string(), run.measurement));
        }
        out
    });
    groups.into_iter().flatten().collect()
}

fn find<'a>(runs: &'a [(String, String, Measurement)], mix: &str, policy: &str) -> Option<&'a Measurement> {
    runs.iter().find(|(m, p, _)| m == mix && p == policy).map(|(_, _, meas)| meas)
}

/// Figure 5.4: AMB temperature of the first 500 s of homogeneous workloads
/// on the SR1500AL (no DTM control).
pub fn fig5_4(scale: Scale) -> Table {
    let mut exp = experiment(scale, Server::sr1500al());
    let apps = ["swim", "mgrid", "galgel", "apsi", "vpr"];
    let mut t = Table::new(
        "fig5_4",
        "AMB temperature curve for the first 500 s of homogeneous workloads on the SR1500AL",
        &["application", "time s", "AMB degC"],
    );
    for name in apps {
        let app = workloads::spec2000::by_name(name).expect("known application");
        let curve = exp.homogeneous_temperature_curve(&app, 500.0);
        for sample in curve.iter().step_by(10) {
            t.push_row([name.to_string(), f1(sample.time_s), f1(sample.amb_c)]);
        }
    }
    t
}

/// Figure 5.5: average AMB temperature of homogeneous SPEC CPU2000 workloads
/// on the PE1950 without DTM control.
pub fn fig5_5(scale: Scale) -> Table {
    let mut exp = experiment(scale, Server::pe1950());
    let mut t = Table::new(
        "fig5_5",
        "Average AMB temperature when memory is driven by homogeneous workloads on the PE1950 (no DTM)",
        &["application", "avg AMB degC"],
    );
    let apps = match scale {
        Scale::Smoke => vec!["swim", "galgel", "vpr"],
        _ => workloads::spec2000::all().iter().map(|a| a.name).collect(),
    };
    for name in apps {
        let app = workloads::spec2000::by_name(name).expect("known application");
        let avg = exp.homogeneous_average_amb(&app);
        t.push_row([name.to_string(), f1(avg)]);
    }
    t
}

fn normalized_time_table(
    id: &str,
    title: &str,
    scale: Scale,
    servers: &[Server],
    mixes_list: &[workloads::WorkloadMix],
) -> Table {
    let mut t = Table::new(id, title, &["server", "workload", "policy", "normalized time"]);
    for server in servers {
        let runs = policy_runs(scale, server.clone(), mixes_list);
        for (mix, policy, m) in &runs {
            if policy == "No-limit" {
                continue;
            }
            let Some(base) = find(&runs, mix, "No-limit") else { continue };
            t.push_row([server.kind.to_string(), mix.clone(), policy.clone(), f3(m.normalized_time(base))]);
        }
    }
    t
}

/// Figure 5.6: normalized running time of the SPEC CPU2000 workloads on both
/// servers under the four software DTM policies.
pub fn fig5_6(scale: Scale) -> Table {
    normalized_time_table(
        "fig5_6",
        "Normalized running time of SPEC CPU2000 workloads (PE1950 and SR1500AL)",
        scale,
        &[Server::pe1950(), Server::sr1500al()],
        &ch5_mixes(scale),
    )
}

/// Figure 5.7: normalized running time of the SPEC CPU2006 workloads on the
/// PE1950.
pub fn fig5_7(scale: Scale) -> Table {
    normalized_time_table(
        "fig5_7",
        "Normalized running time of SPEC CPU2006 workloads on the PE1950",
        scale,
        &[Server::pe1950()],
        &[mixes::w11(), mixes::w12()],
    )
}

/// Figure 5.8: normalized number of L2 cache misses (vs DTM-BW).
pub fn fig5_8(scale: Scale) -> Table {
    let mut t = Table::new(
        "fig5_8",
        "Normalized numbers of L2 cache misses (vs DTM-BW)",
        &["server", "workload", "policy", "normalized L2 misses"],
    );
    for server in [Server::pe1950(), Server::sr1500al()] {
        let runs = policy_runs(scale, server.clone(), &ch5_mixes(scale));
        for (mix, policy, m) in &runs {
            if policy == "No-limit" || policy == "DTM-BW" {
                continue;
            }
            let Some(base) = find(&runs, mix, "DTM-BW") else { continue };
            t.push_row([server.kind.to_string(), mix.clone(), policy.clone(), f3(m.normalized_llc_misses(base))]);
        }
    }
    t
}

/// Figure 5.9: measured memory inlet temperature per policy on the SR1500AL.
pub fn fig5_9(scale: Scale) -> Table {
    let runs = policy_runs(scale, Server::sr1500al(), &ch5_mixes(scale));
    let mut t = Table::new(
        "fig5_9",
        "Measured memory inlet (CPU exhaust) temperature on the SR1500AL",
        &["workload", "policy", "memory inlet degC"],
    );
    for (mix, policy, m) in &runs {
        if policy == "No-limit" {
            continue;
        }
        t.push_row([mix.clone(), policy.clone(), f1(m.memory_inlet_c)]);
    }
    t
}

/// Figure 5.10: CPU power consumption per policy on the SR1500AL
/// (normalized to DTM-BW).
pub fn fig5_10(scale: Scale) -> Table {
    let runs = policy_runs(scale, Server::sr1500al(), &ch5_mixes(scale));
    let mut t = Table::new(
        "fig5_10",
        "CPU power consumption on the SR1500AL (normalized to DTM-BW)",
        &["workload", "policy", "CPU power W", "normalized"],
    );
    for (mix, policy, m) in &runs {
        if policy == "No-limit" {
            continue;
        }
        let Some(base) = find(&runs, mix, "DTM-BW") else { continue };
        t.push_row([mix.clone(), policy.clone(), f1(m.cpu_power_w), f3(m.cpu_power_w / base.cpu_power_w.max(1e-9))]);
    }
    t
}

/// Figure 5.11: normalized CPU + memory energy per policy on the SR1500AL
/// (vs DTM-BW).
pub fn fig5_11(scale: Scale) -> Table {
    let runs = policy_runs(scale, Server::sr1500al(), &ch5_mixes(scale));
    let mut t = Table::new(
        "fig5_11",
        "Normalized energy consumption (CPU + memory) of DTM policies on the SR1500AL (vs DTM-BW)",
        &["workload", "policy", "normalized energy"],
    );
    for (mix, policy, m) in &runs {
        if policy == "No-limit" || policy == "DTM-BW" {
            continue;
        }
        let Some(base) = find(&runs, mix, "DTM-BW") else { continue };
        t.push_row([mix.clone(), policy.clone(), f3(m.normalized_energy(base))]);
    }
    t
}

/// Figure 5.12: normalized running time on the SR1500AL at a room ambient of
/// 26 °C with a 90 °C AMB TDP.
pub fn fig5_12(scale: Scale) -> Table {
    let server = Server::sr1500al().with_ambient_c(26.0).with_amb_tdp(90.0);
    normalized_time_table(
        "fig5_12",
        "Normalized running time on the SR1500AL at 26 degC system ambient (90 degC AMB TDP)",
        scale,
        &[server],
        &ch5_mixes(scale),
    )
}

/// Figure 5.13: DTM-ACG vs DTM-BW at two fixed processor frequencies on the
/// SR1500AL.
pub fn fig5_13(scale: Scale) -> Table {
    let mut t = Table::new(
        "fig5_13",
        "DTM-ACG vs DTM-BW under two processor frequencies on the SR1500AL (normalized to DTM-BW at 3.0 GHz)",
        &["workload", "policy", "frequency GHz", "normalized time"],
    );
    let server = Server::sr1500al();
    let mut exp = experiment(scale, server.clone());
    for mix in ch5_mixes(scale) {
        // Reference: DTM-BW at full frequency.
        let mut bw_fast = PlatformPolicy::new(PolicyKind::Bw, server.clone());
        let reference = exp.run_with(&mix, &mut bw_fast).measurement;
        for (kind, label) in [(PolicyKind::Bw, "DTM-BW"), (PolicyKind::Acg, "DTM-ACG")] {
            for (freq_idx, freq_label) in [(0usize, 3.0f64), (3, 2.0)] {
                let mut policy = PlatformPolicy::new(kind, server.clone()).with_fixed_frequency_index(freq_idx);
                let m = exp.run_with(&mix, &mut policy).measurement;
                t.push_row([mix.id.clone(), label.to_string(), f1(freq_label), f3(m.normalized_time(&reference))]);
            }
        }
    }
    t
}

/// Figure 5.14: average normalized running time on the PE1950 for AMB TDPs
/// of 88, 90 and 92 °C.
pub fn fig5_14(scale: Scale) -> Table {
    let mut t = Table::new(
        "fig5_14",
        "Normalized running time averaged over all workloads on the PE1950 with different AMB TDPs",
        &["AMB TDP degC", "policy", "avg normalized time"],
    );
    for tdp in [88.0, 90.0, 92.0] {
        let server = Server::pe1950().with_amb_tdp(tdp);
        let runs = policy_runs(scale, server, &ch5_mixes(scale));
        for kind in PolicyKind::ALL {
            let policy = kind.to_string();
            let values: Vec<f64> = runs
                .iter()
                .filter(|(_, p, _)| *p == policy)
                .filter_map(|(mix, _, m)| find(&runs, mix, "No-limit").map(|b| m.normalized_time(b)))
                .collect();
            t.push_row([f1(tdp), policy, f3(mean(&values))]);
        }
    }
    t
}

/// Figure 5.15: normalized running time and L2 misses vs the scheduler time
/// slice used when two programs share a core under DTM-ACG.
pub fn fig5_15(_scale: Scale) -> Table {
    let mut t = Table::new(
        "fig5_15",
        "Normalized running time and L2 misses vs scheduler time slice (DTM-ACG core sharing, PE1950)",
        &["time slice ms", "normalized L2 misses", "normalized running time"],
    );
    let apps: Vec<_> = mixes::all_ch4_mixes().into_iter().flat_map(|m| m.apps).collect();
    let reference = TimeSliceModel::linux_default();
    let ref_misses = reference.mix_miss_inflation(&apps);
    let ref_time = mean(&apps.iter().map(|a| reference.runtime_inflation(a)).collect::<Vec<_>>());
    for slice_ms in [5.0, 10.0, 20.0, 50.0, 100.0, 200.0] {
        let model = TimeSliceModel::linux_default().with_time_slice_s(slice_ms / 1000.0);
        let misses = model.mix_miss_inflation(&apps);
        let time = mean(&apps.iter().map(|a| model.runtime_inflation(a)).collect::<Vec<_>>());
        t.push_row([f1(slice_ms), f3(misses / ref_misses), f3(time / ref_time)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_15_penalty_grows_as_the_slice_shrinks() {
        let t = fig5_15(Scale::Smoke);
        let first: f64 = t.rows.first().unwrap()[2].parse().unwrap(); // 5 ms
        let last: f64 = t.rows.last().unwrap()[2].parse().unwrap(); // 200 ms
        assert!(first > last, "5 ms slice must be slower than 200 ms");
        assert!(last <= 1.001);
    }

    #[test]
    #[ignore = "runs smoke-scale platform simulations (~seconds in release); exercised by the Criterion benches"]
    fn fig5_6_smoke_has_rows_for_both_servers() {
        let t = fig5_6(Scale::Smoke);
        assert!(t.rows.iter().any(|r| r[0] == "PE1950"));
        assert!(t.rows.iter().any(|r| r[0] == "SR1500AL"));
    }
}
