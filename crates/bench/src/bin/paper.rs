//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run -p experiments --release --bin paper -- <experiment-id|all> [smoke|quick|paper] [--json <dir>]
//! ```
//!
//! `experiment-id` is one of the identifiers listed by `--list` (for example
//! `fig4_3` or `tab3_2`). The optional scale (default `quick`) controls the
//! batch sizes; `paper` uses the full batch sizes of the study and can take
//! hours per figure.

use std::io::Write;

use experiments::harness::Scale;
use experiments::{all_experiment_ids, run_experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!("usage: paper <experiment-id|all|--list> [smoke|quick|paper] [--json <dir>]");
        std::process::exit(2);
    }
    if args[0] == "--list" {
        for id in all_experiment_ids() {
            println!("{id}");
        }
        return;
    }

    let scale = args.get(1).and_then(|s| Scale::parse(s)).unwrap_or(Scale::Quick);
    let json_dir = args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned();

    let ids: Vec<String> = if args[0] == "all" {
        all_experiment_ids().into_iter().map(String::from).collect()
    } else {
        vec![args[0].clone()]
    };

    for id in ids {
        let started = std::time::Instant::now();
        match run_experiment(&id, scale) {
            Ok(table) => {
                println!("{table}");
                eprintln!("[{}] finished in {:.1} s", id, started.elapsed().as_secs_f64());
                if let Some(dir) = &json_dir {
                    if std::fs::create_dir_all(dir).is_ok() {
                        let path = format!("{dir}/{id}.json");
                        if let Ok(mut f) = std::fs::File::create(&path) {
                            let _ = f.write_all(table.to_json().as_bytes());
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
}
