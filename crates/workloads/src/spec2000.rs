//! Behaviour models of the SPEC CPU2000 applications used by the paper.
//!
//! Section 4.3.2 selects twelve CPU2000 applications: eight whose aggregate
//! memory throughput exceeds 10 GB/s when four copies run on the four-core
//! system (*swim*, *mgrid*, *applu*, *galgel*, *art*, *equake*, *lucas*,
//! *fma3d*) and four between 5 and 10 GB/s (*wupwise*, *vpr*, *mcf*,
//! *apsi*). The parameter values below are behaviour models calibrated to
//! reproduce those classes together with each program's published
//! shared-cache sensitivity and read/write mix; they are not measurements of
//! the original binaries (see DESIGN.md, *Substitutions*).

use crate::app::{AppBehavior, MemoryIntensity, Suite};

const MB: u64 = 1024 * 1024;

fn base(name: &'static str) -> AppBehavior {
    AppBehavior {
        name,
        suite: Suite::Cpu2000,
        instructions_bn: 100.0,
        base_ipc: 1.5,
        l2_apki: 10.0,
        speculative_apki: 1.0,
        hot_fraction: 0.5,
        hot_bytes: MB,
        stream_bytes: 64 * MB,
        write_fraction: 0.3,
        dependent_fraction: 0.1,
        intensity: MemoryIntensity::Moderate,
    }
}

/// `171.swim` — shallow-water model, streaming FP, very high bandwidth.
pub fn swim() -> AppBehavior {
    AppBehavior {
        instructions_bn: 225.0,
        base_ipc: 1.8,
        l2_apki: 30.0,
        speculative_apki: 4.0,
        hot_fraction: 0.25,
        hot_bytes: 512 * 1024,
        stream_bytes: 190 * MB,
        write_fraction: 0.35,
        dependent_fraction: 0.05,
        intensity: MemoryIntensity::High,
        ..base("swim")
    }
}

/// `172.mgrid` — multigrid solver, streaming FP, high bandwidth.
pub fn mgrid() -> AppBehavior {
    AppBehavior {
        instructions_bn: 419.0,
        base_ipc: 1.9,
        l2_apki: 24.0,
        speculative_apki: 3.0,
        hot_fraction: 0.40,
        hot_bytes: MB,
        stream_bytes: 56 * MB,
        write_fraction: 0.30,
        dependent_fraction: 0.08,
        intensity: MemoryIntensity::High,
        ..base("mgrid")
    }
}

/// `173.applu` — parabolic/elliptic PDE solver, high bandwidth.
pub fn applu() -> AppBehavior {
    AppBehavior {
        instructions_bn: 223.0,
        base_ipc: 1.8,
        l2_apki: 26.0,
        speculative_apki: 3.5,
        hot_fraction: 0.35,
        hot_bytes: 800 * 1024,
        stream_bytes: 180 * MB,
        write_fraction: 0.33,
        dependent_fraction: 0.08,
        intensity: MemoryIntensity::High,
        ..base("applu")
    }
}

/// `178.galgel` — fluid dynamics, cache-sensitive, high bandwidth under
/// contention.
pub fn galgel() -> AppBehavior {
    AppBehavior {
        instructions_bn: 409.0,
        base_ipc: 2.2,
        l2_apki: 18.0,
        speculative_apki: 2.0,
        hot_fraction: 0.65,
        hot_bytes: 2_560 * 1024,
        stream_bytes: 32 * MB,
        write_fraction: 0.25,
        dependent_fraction: 0.10,
        intensity: MemoryIntensity::High,
        ..base("galgel")
    }
}

/// `179.art` — neural-network image recognition, small but thrash-prone
/// working set, very high miss rate under sharing.
pub fn art() -> AppBehavior {
    AppBehavior {
        instructions_bn: 86.0,
        base_ipc: 1.4,
        l2_apki: 40.0,
        speculative_apki: 2.0,
        hot_fraction: 0.60,
        hot_bytes: 3_584 * 1024,
        stream_bytes: 8 * MB,
        write_fraction: 0.20,
        dependent_fraction: 0.30,
        intensity: MemoryIntensity::High,
        ..base("art")
    }
}

/// `183.equake` — seismic wave propagation, high bandwidth.
pub fn equake() -> AppBehavior {
    AppBehavior {
        instructions_bn: 131.0,
        base_ipc: 1.6,
        l2_apki: 27.0,
        speculative_apki: 3.0,
        hot_fraction: 0.45,
        hot_bytes: 1_200 * 1024,
        stream_bytes: 49 * MB,
        write_fraction: 0.30,
        dependent_fraction: 0.15,
        intensity: MemoryIntensity::High,
        ..base("equake")
    }
}

/// `189.lucas` — number theory (Lucas-Lehmer), streaming FFT-like access.
pub fn lucas() -> AppBehavior {
    AppBehavior {
        instructions_bn: 142.0,
        base_ipc: 1.7,
        l2_apki: 25.0,
        speculative_apki: 3.0,
        hot_fraction: 0.30,
        hot_bytes: 640 * 1024,
        stream_bytes: 142 * MB,
        write_fraction: 0.35,
        dependent_fraction: 0.10,
        intensity: MemoryIntensity::High,
        ..base("lucas")
    }
}

/// `191.fma3d` — finite-element crash simulation, high bandwidth.
pub fn fma3d() -> AppBehavior {
    AppBehavior {
        instructions_bn: 268.0,
        base_ipc: 1.8,
        l2_apki: 22.0,
        speculative_apki: 2.5,
        hot_fraction: 0.45,
        hot_bytes: 1_536 * 1024,
        stream_bytes: 103 * MB,
        write_fraction: 0.30,
        dependent_fraction: 0.12,
        intensity: MemoryIntensity::High,
        ..base("fma3d")
    }
}

/// `168.wupwise` — quantum chromodynamics, moderate bandwidth.
pub fn wupwise() -> AppBehavior {
    AppBehavior {
        instructions_bn: 349.0,
        base_ipc: 2.0,
        l2_apki: 12.0,
        speculative_apki: 1.5,
        hot_fraction: 0.70,
        hot_bytes: 2 * MB,
        stream_bytes: 176 * MB,
        write_fraction: 0.30,
        dependent_fraction: 0.10,
        intensity: MemoryIntensity::Moderate,
        ..base("wupwise")
    }
}

/// `175.vpr` — FPGA place & route, cache-friendly, moderate bandwidth.
pub fn vpr() -> AppBehavior {
    AppBehavior {
        instructions_bn: 84.0,
        base_ipc: 1.5,
        l2_apki: 11.0,
        speculative_apki: 1.0,
        hot_fraction: 0.75,
        hot_bytes: 1_536 * 1024,
        stream_bytes: 32 * MB,
        write_fraction: 0.25,
        dependent_fraction: 0.30,
        intensity: MemoryIntensity::Moderate,
        ..base("vpr")
    }
}

/// `181.mcf` — combinatorial optimisation, pointer chasing, latency bound.
pub fn mcf() -> AppBehavior {
    AppBehavior {
        instructions_bn: 61.0,
        base_ipc: 0.9,
        l2_apki: 38.0,
        speculative_apki: 1.0,
        hot_fraction: 0.50,
        hot_bytes: 2_560 * 1024,
        stream_bytes: 190 * MB,
        write_fraction: 0.15,
        dependent_fraction: 0.60,
        intensity: MemoryIntensity::Moderate,
        ..base("mcf")
    }
}

/// `301.apsi` — meteorology, moderate bandwidth.
pub fn apsi() -> AppBehavior {
    AppBehavior {
        instructions_bn: 347.0,
        base_ipc: 1.9,
        l2_apki: 12.0,
        speculative_apki: 1.5,
        hot_fraction: 0.70,
        hot_bytes: 1_792 * 1024,
        stream_bytes: 200 * MB,
        write_fraction: 0.30,
        dependent_fraction: 0.15,
        intensity: MemoryIntensity::Moderate,
        ..base("apsi")
    }
}

/// All twelve CPU2000 applications used in the thermal study.
pub fn all() -> Vec<AppBehavior> {
    vec![swim(), mgrid(), applu(), galgel(), art(), equake(), lucas(), fma3d(), wupwise(), vpr(), mcf(), apsi()]
}

/// Looks an application up by name.
pub fn by_name(name: &str) -> Option<AppBehavior> {
    all().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twelve_apps_are_present_and_valid() {
        let apps = all();
        assert_eq!(apps.len(), 12);
        for app in &apps {
            app.validate().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(app.suite, Suite::Cpu2000);
        }
    }

    #[test]
    fn eight_high_and_four_moderate_intensity_apps() {
        let apps = all();
        let high = apps.iter().filter(|a| a.intensity == MemoryIntensity::High).count();
        let moderate = apps.iter().filter(|a| a.intensity == MemoryIntensity::Moderate).count();
        assert_eq!(high, 8, "paper selects eight >10 GB/s applications");
        assert_eq!(moderate, 4, "paper selects four 5-10 GB/s applications");
    }

    #[test]
    fn high_intensity_apps_demand_more_bandwidth_than_moderate_ones() {
        // Demand rate per instruction (APKI x miss-prone fraction) must
        // separate the two classes on average.
        let apps = all();
        let demand = |a: &AppBehavior| a.l2_apki * (1.0 - 0.6 * a.hot_fraction);
        let avg = |class: MemoryIntensity| {
            let v: Vec<f64> = apps.iter().filter(|a| a.intensity == class).map(demand).collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(MemoryIntensity::High) > avg(MemoryIntensity::Moderate));
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(by_name("swim").is_some());
        assert!(by_name("mcf").is_some());
        assert!(by_name("gap").is_none(), "gap is deliberately excluded (Section 5.3.2)");
    }

    #[test]
    fn names_are_unique() {
        let apps = all();
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), apps.len());
    }
}
