//! Small deterministic pseudo-random generator.
//!
//! The simulators only need reproducible, statistically reasonable jitter
//! (access gaps, sensor noise, dependence draws), not cryptographic quality,
//! so a SplitMix64 generator is plenty. The API mirrors the subset of the
//! `rand` crate the substrates use, which keeps the call sites conventional.

use std::ops::Range;

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        // One warm-up step decorrelates small, similar seeds.
        let mut rng = SmallRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) };
        rng.next_u64();
        rng
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw from a half-open range (`f64` or `u64`).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut SmallRng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut SmallRng) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample(self, rng: &mut SmallRng) -> u64 {
        debug_assert!(self.start < self.end, "empty u64 range");
        let span = self.end - self.start;
        // Multiply-shift rejection-free mapping; the bias is < 2^-64 * span,
        // irrelevant for simulation jitter.
        self.start + ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn f64_draws_are_uniform_enough() {
        let mut rng = SmallRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&x));
            let y: u64 = rng.gen_range(10..20u64);
            assert!((10..20).contains(&y));
        }
    }

    #[test]
    fn bernoulli_frequency_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
