//! Workload mixes from Table 4.2 (simulation study) and Table 5.2
//! (measurement study).

use crate::app::AppBehavior;
use crate::{spec2000, spec2006};

/// A multiprogramming workload mix: one application per core.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    /// Mix identifier (`"W1"` .. `"W8"`, `"W11"`, `"W12"`, or a synthetic
    /// identifier for homogeneous mixes).
    pub id: String,
    /// The applications in the mix, in core order.
    pub apps: Vec<AppBehavior>,
}

impl WorkloadMix {
    /// Builds a mix from an identifier and a list of applications.
    pub fn new(id: impl Into<String>, apps: Vec<AppBehavior>) -> Self {
        WorkloadMix { id: id.into(), apps }
    }

    /// Number of applications (= cores used) in the mix.
    pub fn width(&self) -> usize {
        self.apps.len()
    }

    /// Total instructions of one copy of every application in the mix.
    pub fn instructions_per_round(&self) -> u64 {
        self.apps.iter().map(|a| a.instructions()).sum()
    }

    /// A homogeneous mix: `n` copies of the same application, as used by the
    /// Chapter 5 thermal-emergency observation experiments (Figures 5.4 and
    /// 5.5).
    pub fn homogeneous(app: AppBehavior, n: usize) -> Self {
        WorkloadMix { id: format!("{}x{}", app.name, n), apps: vec![app; n] }
    }
}

fn mix_2000(id: &str, names: [&str; 4]) -> WorkloadMix {
    let apps =
        names.iter().map(|n| spec2000::by_name(n).unwrap_or_else(|| panic!("unknown CPU2000 app {n}"))).collect();
    WorkloadMix::new(id, apps)
}

fn mix_2006(id: &str, names: [&str; 4]) -> WorkloadMix {
    let apps =
        names.iter().map(|n| spec2006::by_name(n).unwrap_or_else(|| panic!("unknown CPU2006 app {n}"))).collect();
    WorkloadMix::new(id, apps)
}

/// W1: swim, mgrid, applu, galgel.
pub fn w1() -> WorkloadMix {
    mix_2000("W1", ["swim", "mgrid", "applu", "galgel"])
}

/// W2: art, equake, lucas, fma3d.
pub fn w2() -> WorkloadMix {
    mix_2000("W2", ["art", "equake", "lucas", "fma3d"])
}

/// W3: swim, applu, art, lucas.
pub fn w3() -> WorkloadMix {
    mix_2000("W3", ["swim", "applu", "art", "lucas"])
}

/// W4: mgrid, galgel, equake, fma3d.
pub fn w4() -> WorkloadMix {
    mix_2000("W4", ["mgrid", "galgel", "equake", "fma3d"])
}

/// W5: swim, art, wupwise, vpr.
pub fn w5() -> WorkloadMix {
    mix_2000("W5", ["swim", "art", "wupwise", "vpr"])
}

/// W6: mgrid, equake, mcf, apsi.
pub fn w6() -> WorkloadMix {
    mix_2000("W6", ["mgrid", "equake", "mcf", "apsi"])
}

/// W7: applu, lucas, wupwise, mcf.
pub fn w7() -> WorkloadMix {
    mix_2000("W7", ["applu", "lucas", "wupwise", "mcf"])
}

/// W8: galgel, fma3d, vpr, apsi.
pub fn w8() -> WorkloadMix {
    mix_2000("W8", ["galgel", "fma3d", "vpr", "apsi"])
}

/// W11: milc, leslie3d, soplex, GemsFDTD (SPEC CPU2006).
pub fn w11() -> WorkloadMix {
    mix_2006("W11", ["milc", "leslie3d", "soplex", "GemsFDTD"])
}

/// W12: libquantum, lbm, omnetpp, wrf (SPEC CPU2006).
pub fn w12() -> WorkloadMix {
    mix_2006("W12", ["libquantum", "lbm", "omnetpp", "wrf"])
}

/// The eight CPU2000 mixes of Table 4.2 (also reused in Chapter 5).
pub fn all_ch4_mixes() -> Vec<WorkloadMix> {
    vec![w1(), w2(), w3(), w4(), w5(), w6(), w7(), w8()]
}

/// The ten mixes of the Chapter 5 study (Table 5.2): W1–W8 plus the two
/// CPU2006 mixes.
pub fn all_ch5_mixes() -> Vec<WorkloadMix> {
    let mut v = all_ch4_mixes();
    v.push(w11());
    v.push(w12());
    v
}

/// Looks a mix up by its identifier (`"W1"`, ..., `"W12"`).
pub fn by_id(id: &str) -> Option<WorkloadMix> {
    all_ch5_mixes().into_iter().find(|m| m.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::MemoryIntensity;

    #[test]
    fn table_4_2_mixes_match_the_paper() {
        let w1 = w1();
        assert_eq!(w1.apps.iter().map(|a| a.name).collect::<Vec<_>>(), ["swim", "mgrid", "applu", "galgel"]);
        let w6 = w6();
        assert_eq!(w6.apps.iter().map(|a| a.name).collect::<Vec<_>>(), ["mgrid", "equake", "mcf", "apsi"]);
        assert_eq!(all_ch4_mixes().len(), 8);
    }

    #[test]
    fn every_mix_has_four_applications() {
        for mix in all_ch5_mixes() {
            assert_eq!(mix.width(), 4, "{} must have 4 apps", mix.id);
            assert!(mix.instructions_per_round() > 0);
        }
    }

    #[test]
    fn w1_to_w4_are_all_high_intensity() {
        for mix in [w1(), w2(), w3(), w4()] {
            assert!(
                mix.apps.iter().all(|a| a.intensity == MemoryIntensity::High),
                "{} should only contain >10 GB/s applications",
                mix.id
            );
        }
    }

    #[test]
    fn w5_to_w8_contain_moderate_apps() {
        for mix in [w5(), w6(), w7(), w8()] {
            assert!(
                mix.apps.iter().any(|a| a.intensity == MemoryIntensity::Moderate),
                "{} mixes high and moderate applications",
                mix.id
            );
        }
    }

    #[test]
    fn lookup_by_id_round_trips() {
        for mix in all_ch5_mixes() {
            let found = by_id(&mix.id).unwrap();
            assert_eq!(found, mix);
        }
        assert!(by_id("W99").is_none());
    }

    #[test]
    fn homogeneous_mix_replicates_one_app() {
        let mix = WorkloadMix::homogeneous(crate::spec2000::swim(), 4);
        assert_eq!(mix.width(), 4);
        assert!(mix.apps.iter().all(|a| a.name == "swim"));
        assert_eq!(mix.id, "swimx4");
    }
}
