//! Per-application behaviour models.
//!
//! Each SPEC application is described by a small set of parameters that,
//! when fed through the shared-L2 cache simulator and the FBDIMM memory
//! simulator, reproduce the memory behaviour the paper relies on: aggregate
//! memory throughput when four copies run together, shared-cache contention
//! (how the L2 miss rate responds to the number of co-running programs) and
//! the read/write traffic mix.

/// Benchmark suite an application belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2000 (used by the Chapter 4 simulation study).
    Cpu2000,
    /// SPEC CPU2006 (used by the Chapter 5 measurement study).
    Cpu2006,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Cpu2000 => write!(f, "SPEC CPU2000"),
            Suite::Cpu2006 => write!(f, "SPEC CPU2006"),
        }
    }
}

/// Coarse memory-intensity class used by the paper when selecting
/// applications (Section 4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryIntensity {
    /// Aggregate throughput above 10 GB/s when four copies run together.
    High,
    /// Aggregate throughput between 5 and 10 GB/s.
    Moderate,
    /// Below 5 GB/s (not used in the thermal mixes).
    Low,
}

/// Behaviour model of one application.
///
/// The parameters are chosen so that the synthetic address stream produced
/// by [`crate::stream::AccessStream`] reproduces the application's published
/// memory characteristics (high/moderate bandwidth class, shared-cache
/// sensitivity, read/write mix). They are *models*, not measurements; see
/// `DESIGN.md` for the substitution rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct AppBehavior {
    /// Benchmark name (e.g. `"swim"`).
    pub name: &'static str,
    /// Suite the benchmark belongs to.
    pub suite: Suite,
    /// Total committed instructions for one copy of the benchmark, in
    /// billions. (The experiment harness scales this down uniformly to keep
    /// batch simulations short; ratios between benchmarks are preserved.)
    pub instructions_bn: f64,
    /// Base IPC per core when the memory system is unloaded (captures issue
    /// width, branch behaviour and L1/L2-hit performance).
    pub base_ipc: f64,
    /// L2 (last-level cache) accesses per kilo-instruction — i.e. the L1
    /// miss rate seen by the shared cache.
    pub l2_apki: f64,
    /// Additional speculative / hardware-prefetch L2 accesses per
    /// kilo-instruction at the maximum core frequency. These do not block
    /// the core and scale down with frequency (the mechanism behind the
    /// small traffic reduction the paper observes under DTM-CDVFS).
    pub speculative_apki: f64,
    /// Fraction of L2 accesses directed at the *hot* (reusable) region of
    /// the working set. The remainder streams through a region much larger
    /// than the cache and always misses.
    pub hot_fraction: f64,
    /// Size of the hot region in bytes. Contention for the shared L2 among
    /// co-running programs is governed by the sum of hot regions vs. the
    /// cache capacity.
    pub hot_bytes: u64,
    /// Size of the streaming region in bytes.
    pub stream_bytes: u64,
    /// Fraction of memory traffic that is write-backs.
    pub write_fraction: f64,
    /// Fraction of L2 misses the core cannot overlap (pointer chasing).
    pub dependent_fraction: f64,
    /// Memory-intensity class (Section 4.3.2 selection).
    pub intensity: MemoryIntensity,
}

impl AppBehavior {
    /// Total committed instructions for one copy (absolute count).
    pub fn instructions(&self) -> u64 {
        (self.instructions_bn * 1e9) as u64
    }

    /// Expected number of demand L2 accesses for one copy.
    pub fn expected_l2_accesses(&self) -> u64 {
        (self.instructions() as f64 * self.l2_apki / 1000.0) as u64
    }

    /// Validates that the model parameters are internally consistent.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("application name must not be empty".into());
        }
        if self.instructions_bn <= 0.0 {
            return Err(format!("{}: instruction count must be positive", self.name));
        }
        if !(self.base_ipc > 0.0 && self.base_ipc <= 4.0) {
            return Err(format!("{}: base IPC {} outside (0, 4]", self.name, self.base_ipc));
        }
        if self.l2_apki < 0.0 || self.speculative_apki < 0.0 {
            return Err(format!("{}: access rates must be non-negative", self.name));
        }
        for (label, v) in [
            ("hot_fraction", self.hot_fraction),
            ("write_fraction", self.write_fraction),
            ("dependent_fraction", self.dependent_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {label} {v} outside [0, 1]", self.name));
            }
        }
        if self.hot_bytes == 0 || self.stream_bytes == 0 {
            return Err(format!("{}: working-set sizes must be positive", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2000;

    #[test]
    fn suite_display_is_informative() {
        assert!(Suite::Cpu2000.to_string().contains("2000"));
        assert!(Suite::Cpu2006.to_string().contains("2006"));
    }

    #[test]
    fn instruction_helpers_are_consistent() {
        let swim = spec2000::swim();
        assert_eq!(swim.instructions(), (swim.instructions_bn * 1e9) as u64);
        assert!(swim.expected_l2_accesses() > 0);
    }

    #[test]
    fn validation_rejects_bad_fractions() {
        let mut app = spec2000::swim();
        app.hot_fraction = 1.5;
        assert!(app.validate().is_err());

        let mut app = spec2000::swim();
        app.base_ipc = 0.0;
        assert!(app.validate().is_err());

        let mut app = spec2000::swim();
        app.hot_bytes = 0;
        assert!(app.validate().is_err());
    }
}
