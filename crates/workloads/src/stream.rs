//! Deterministic synthetic address-stream generation.
//!
//! Each application instance owns an [`AccessStream`] that produces the
//! sequence of last-level-cache accesses the application would issue: the
//! number of instructions executed since the previous access (the *gap*),
//! the line address and whether the access is a write-back candidate.
//!
//! The stream has two components, governed by the application's behaviour
//! model:
//!
//! * **hot accesses** revisit a bounded "hot" region with a uniform random
//!   pattern, so their L2 hit rate depends on how much of the hot region the
//!   application manages to keep resident — the mechanism behind shared-cache
//!   contention and the DTM-ACG benefit;
//! * **streaming accesses** walk sequentially through a region much larger
//!   than the cache and essentially always miss.
//!
//! A slow sinusoid-like *phase modulation* varies the access gap over the
//! run, reproducing the program-phase-driven temperature drift the paper
//! observes on real machines (Section 5.4.1).

use crate::rng::SmallRng;

use crate::app::AppBehavior;

/// One last-level-cache access produced by the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamAccess {
    /// Instructions executed since the previous access.
    pub gap_instructions: u64,
    /// Line address (64-byte granularity), relative to the instance's base.
    pub line: u64,
    /// Whether the access will eventually produce a write-back.
    pub is_write: bool,
    /// Whether the access targets the hot (reusable) region.
    pub is_hot: bool,
}

/// Phase modulation of the access rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseModel {
    /// Length of one phase period, in instructions.
    pub period_instructions: u64,
    /// Fraction of the period spent in the memory-intensive phase.
    pub duty: f64,
    /// Multiplier applied to the access gap during the quiet phase
    /// (>= 1.0 means fewer accesses per instruction).
    pub quiet_gap_factor: f64,
}

impl Default for PhaseModel {
    fn default() -> Self {
        PhaseModel { period_instructions: 20_000_000_000, duty: 0.75, quiet_gap_factor: 2.0 }
    }
}

/// Deterministic per-instance access-stream generator.
#[derive(Debug, Clone)]
pub struct AccessStream {
    app: AppBehavior,
    rng: SmallRng,
    phase: PhaseModel,
    instructions_so_far: u64,
    /// `instructions_so_far % phase.period_instructions`, maintained
    /// incrementally so the per-access phase check costs no division.
    phase_pos: u64,
    /// `phase.duty * phase.period_instructions`, precomputed.
    quiet_threshold: f64,
    /// Mean access gap (instructions) in the memory-intensive phase.
    mean_gap_busy: f64,
    /// Mean access gap in the quiet phase (`mean_gap_busy * quiet factor`).
    mean_gap_quiet: f64,
    stream_cursor: u64,
    hot_lines: u64,
    stream_lines: u64,
    accesses_generated: u64,
}

impl AccessStream {
    /// Creates a stream for one instance of `app`, seeded deterministically
    /// from `seed` (typically derived from the core index and copy number).
    pub fn new(app: &AppBehavior, seed: u64) -> Self {
        let hot_lines = (app.hot_bytes / 64).max(1);
        let stream_lines = (app.stream_bytes / 64).max(1);
        let mut stream = AccessStream {
            app: app.clone(),
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            phase: PhaseModel::default(),
            instructions_so_far: 0,
            phase_pos: 0,
            quiet_threshold: 0.0,
            mean_gap_busy: 0.0,
            mean_gap_quiet: 0.0,
            stream_cursor: 0,
            hot_lines,
            stream_lines,
            accesses_generated: 0,
        };
        stream.cache_phase_constants();
        stream
    }

    /// Overrides the default phase model.
    pub fn with_phase(mut self, phase: PhaseModel) -> Self {
        self.phase = phase;
        self.cache_phase_constants();
        self
    }

    /// (Re)derives the per-access constants from the app and phase models.
    fn cache_phase_constants(&mut self) {
        self.quiet_threshold = self.phase.duty * self.phase.period_instructions as f64;
        self.mean_gap_busy = 1000.0 / self.app.l2_apki.max(0.01);
        self.mean_gap_quiet = self.mean_gap_busy * self.phase.quiet_gap_factor;
        self.phase_pos = self.instructions_so_far % self.phase.period_instructions;
    }

    /// The application this stream models.
    pub fn app(&self) -> &AppBehavior {
        &self.app
    }

    /// Total number of lines addressable by this instance (hot + streaming
    /// regions); the owner uses this to place instances at disjoint base
    /// addresses.
    pub fn footprint_lines(&self) -> u64 {
        self.hot_lines + self.stream_lines
    }

    /// Instructions attributed to the accesses generated so far.
    pub fn instructions_generated(&self) -> u64 {
        self.instructions_so_far
    }

    /// Number of accesses generated so far.
    pub fn accesses_generated(&self) -> u64 {
        self.accesses_generated
    }

    fn in_quiet_phase(&self) -> bool {
        self.phase_pos as f64 > self.quiet_threshold
    }

    /// Produces the next demand access.
    pub fn next_access(&mut self) -> StreamAccess {
        // Mean gap between demand L2 accesses in instructions (precomputed
        // per phase — this runs once per access of the closed loop).
        let mean_gap = if self.in_quiet_phase() { self.mean_gap_quiet } else { self.mean_gap_busy };
        // Geometric-like jitter around the mean, bounded to keep the stream
        // well behaved.
        let jitter: f64 = self.rng.gen_range(0.5..1.5);
        let gap = (mean_gap * jitter).max(1.0) as u64;

        let is_hot = self.rng.gen_bool(self.app.hot_fraction.clamp(0.0, 1.0));
        let line = if is_hot {
            self.rng.gen_range(0..self.hot_lines)
        } else {
            // Sequential walk through the streaming region, offset past the
            // hot region.
            self.stream_cursor = if self.stream_cursor + 1 == self.stream_lines { 0 } else { self.stream_cursor + 1 };
            self.hot_lines + self.stream_cursor
        };
        let is_write = self.rng.gen_bool(self.app.write_fraction.clamp(0.0, 1.0));

        self.instructions_so_far += gap;
        self.phase_pos += gap;
        while self.phase_pos >= self.phase.period_instructions {
            self.phase_pos -= self.phase.period_instructions;
        }
        self.accesses_generated += 1;
        StreamAccess { gap_instructions: gap, line, is_write, is_hot }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec2000;

    #[test]
    fn stream_is_deterministic_for_a_seed() {
        let app = spec2000::swim();
        let mut a = AccessStream::new(&app, 42);
        let mut b = AccessStream::new(&app, 42);
        for _ in 0..1_000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let app = spec2000::swim();
        let mut a = AccessStream::new(&app, 1);
        let mut b = AccessStream::new(&app, 2);
        let same = (0..100).filter(|_| a.next_access() == b.next_access()).count();
        assert!(same < 100, "streams with different seeds should diverge");
    }

    #[test]
    fn mean_gap_tracks_l2_apki() {
        let app = spec2000::swim(); // 30 accesses per kilo-instruction
        let mut s = AccessStream::new(&app, 7);
        let n = 50_000;
        for _ in 0..n {
            s.next_access();
        }
        let apki = 1000.0 * n as f64 / s.instructions_generated() as f64;
        // Phase modulation lowers the average rate a little; accept a band.
        assert!(apki > 0.55 * app.l2_apki && apki < 1.2 * app.l2_apki, "measured APKI {apki}");
        assert_eq!(s.accesses_generated(), n);
    }

    #[test]
    fn hot_fraction_is_respected() {
        let app = spec2000::galgel(); // hot_fraction 0.65
        let mut s = AccessStream::new(&app, 3);
        let n = 20_000;
        let hot = (0..n).filter(|_| s.next_access().is_hot).count();
        let frac = hot as f64 / n as f64;
        assert!((frac - app.hot_fraction).abs() < 0.05, "hot fraction {frac}");
    }

    #[test]
    fn addresses_stay_within_footprint() {
        let app = spec2000::art();
        let mut s = AccessStream::new(&app, 11);
        let fp = s.footprint_lines();
        for _ in 0..10_000 {
            assert!(s.next_access().line < fp);
        }
    }

    #[test]
    fn write_fraction_is_respected() {
        let app = spec2000::lucas(); // write_fraction 0.35
        let mut s = AccessStream::new(&app, 5);
        let n = 20_000;
        let writes = (0..n).filter(|_| s.next_access().is_write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - app.write_fraction).abs() < 0.05, "write fraction {frac}");
    }

    #[test]
    fn quiet_phase_reduces_access_rate() {
        let app = spec2000::swim();
        let phase = PhaseModel { period_instructions: 1_000_000, duty: 0.5, quiet_gap_factor: 4.0 };
        let mut s = AccessStream::new(&app, 9).with_phase(phase);
        // Collect instantaneous APKI over many accesses; with a strong quiet
        // factor the variance must be visible.
        let mut gaps = Vec::new();
        for _ in 0..20_000 {
            gaps.push(s.next_access().gap_instructions);
        }
        let small = gaps.iter().filter(|&&g| g < 50).count();
        let large = gaps.iter().filter(|&&g| g >= 90).count();
        assert!(small > 0 && large > 0, "both phases should be visible");
    }
}
