//! # workloads
//!
//! Synthetic workload models for the DRAM thermal study.
//!
//! The paper drives its two-level thermal simulator with multiprogramming
//! mixes of SPEC CPU2000 (and, in the measurement study, SPEC CPU2006)
//! benchmarks. This crate substitutes the benchmark binaries with
//! *behaviour models*: per-application parameters (instruction count, base
//! IPC, L2 access rate, hot/streaming working-set structure, write fraction,
//! pointer-chasing dependence) and a deterministic synthetic address-stream
//! generator that reproduces each application's cache and memory behaviour
//! when run through the shared-L2 and FBDIMM simulators.
//!
//! The crate also defines the workload mixes of Table 4.2 (`W1`–`W8`) and
//! Table 5.2 (`W11`, `W12`) and the batch-job scheduling used by the paper
//! (multiple copies of every application, refilled round-robin as copies
//! finish).
//!
//! ```
//! use workloads::{mixes, AppBehavior};
//!
//! let w1 = mixes::w1();
//! assert_eq!(w1.apps.len(), 4);
//! let swim: &AppBehavior = &w1.apps[0];
//! assert_eq!(swim.name, "swim");
//! assert!(swim.l2_apki > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod batch;
pub mod mixes;
pub mod rng;
pub mod spec2000;
pub mod spec2006;
pub mod stream;

pub use app::{AppBehavior, MemoryIntensity, Suite};
pub use batch::{BatchJob, BatchStatus, JobSlot};
pub use mixes::{all_ch4_mixes, all_ch5_mixes, WorkloadMix};
pub use stream::{AccessStream, StreamAccess};
