//! Batch-job scheduling of workload mixes.
//!
//! To observe memory temperature over thousands of seconds, the paper runs
//! each workload mix as a *batch job*: many copies of every application in
//! the mix (fifty in the simulation study, ten or five in the measurement
//! study). When a copy finishes and releases its core, the next waiting copy
//! is assigned to that core in round-robin order. [`BatchJob`] reproduces
//! exactly this bookkeeping; the simulators drive it by reporting how many
//! instructions each core retired per interval.

use crate::app::AppBehavior;
use crate::mixes::WorkloadMix;

/// The application copy currently running on one core.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSlot {
    /// Index into the mix's application list.
    pub app_index: usize,
    /// Copy number of this application (0-based).
    pub copy: usize,
    /// Instructions still to retire before the copy completes.
    pub remaining_instructions: u64,
}

/// Progress summary of a batch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStatus {
    /// Copies completed so far.
    pub completed_copies: usize,
    /// Total copies in the batch.
    pub total_copies: usize,
    /// Instructions retired so far (across all cores).
    pub retired_instructions: u64,
    /// Instructions remaining (queued + in progress).
    pub remaining_instructions: u64,
}

impl BatchStatus {
    /// Fraction of the batch completed, by instruction count.
    pub fn progress(&self) -> f64 {
        let total = self.retired_instructions + self.remaining_instructions;
        if total == 0 {
            1.0
        } else {
            self.retired_instructions as f64 / total as f64
        }
    }
}

/// A batch job built from a workload mix.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchJob {
    mix: WorkloadMix,
    /// Remaining copies to dispatch, as (app_index, copy) pairs in
    /// round-robin order.
    pending: std::collections::VecDeque<(usize, usize)>,
    /// Per-core running slot (`None` once the batch has drained and the core
    /// is idle).
    slots: Vec<Option<JobSlot>>,
    completed: usize,
    total: usize,
    retired: u64,
    /// Scale factor applied to instruction counts (1.0 = full SPEC length).
    scale: f64,
}

impl BatchJob {
    /// Creates a batch of `copies` copies of every application in `mix`,
    /// scheduled onto `cores` cores. `instruction_scale` uniformly scales
    /// each application's instruction count (the experiment harness uses
    /// this to shorten runs while preserving ratios).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero, `copies` is zero or the scale is not
    /// strictly positive.
    pub fn new(mix: WorkloadMix, copies: usize, cores: usize, instruction_scale: f64) -> Self {
        assert!(cores > 0, "batch needs at least one core");
        assert!(copies > 0, "batch needs at least one copy per application");
        assert!(instruction_scale > 0.0, "instruction scale must be positive");

        // Round-robin dispatch order: copy 0 of app 0, copy 0 of app 1, ...,
        // copy 1 of app 0, ... so that the per-core assignment matches the
        // paper's round-robin refill.
        let mut pending = std::collections::VecDeque::new();
        for copy in 0..copies {
            for app_index in 0..mix.apps.len() {
                pending.push_back((app_index, copy));
            }
        }
        let total = pending.len();

        let mut job = BatchJob {
            mix,
            pending,
            slots: vec![None; cores],
            completed: 0,
            total,
            retired: 0,
            scale: instruction_scale,
        };
        for core in 0..cores {
            job.refill(core);
        }
        job
    }

    fn scaled_instructions(&self, app_index: usize) -> u64 {
        ((self.mix.apps[app_index].instructions() as f64) * self.scale).max(1.0) as u64
    }

    fn refill(&mut self, core: usize) {
        if self.slots[core].is_some() {
            return;
        }
        if let Some((app_index, copy)) = self.pending.pop_front() {
            let remaining = self.scaled_instructions(app_index);
            self.slots[core] = Some(JobSlot { app_index, copy, remaining_instructions: remaining });
        }
    }

    /// The workload mix this batch was built from.
    pub fn mix(&self) -> &WorkloadMix {
        &self.mix
    }

    /// Number of cores the batch is scheduled onto.
    pub fn cores(&self) -> usize {
        self.slots.len()
    }

    /// The application currently running on `core`, if any.
    pub fn app_on_core(&self, core: usize) -> Option<&AppBehavior> {
        self.slots[core].as_ref().map(|s| &self.mix.apps[s.app_index])
    }

    /// The slot currently occupying `core`, if any.
    pub fn slot(&self, core: usize) -> Option<&JobSlot> {
        self.slots[core].as_ref()
    }

    /// Reports that `core` retired `instructions` instructions, advancing
    /// (and possibly completing and refilling) its slot. Returns the number
    /// of copies that completed as a result.
    pub fn retire(&mut self, core: usize, instructions: u64) -> usize {
        let mut completions = 0;
        let mut budget = instructions;
        self.retired += instructions;
        while budget > 0 {
            let Some(slot) = self.slots[core].as_mut() else {
                break;
            };
            if slot.remaining_instructions > budget {
                slot.remaining_instructions -= budget;
                budget = 0;
            } else {
                budget -= slot.remaining_instructions;
                self.slots[core] = None;
                self.completed += 1;
                completions += 1;
                self.refill(core);
            }
        }
        completions
    }

    /// Returns `true` once every copy has completed.
    pub fn is_complete(&self) -> bool {
        self.completed == self.total
    }

    /// Progress summary.
    pub fn status(&self) -> BatchStatus {
        let in_flight: u64 = self.slots.iter().flatten().map(|s| s.remaining_instructions).sum();
        let queued: u64 = self.pending.iter().map(|&(app, _)| self.scaled_instructions(app)).sum();
        BatchStatus {
            completed_copies: self.completed,
            total_copies: self.total,
            retired_instructions: self.retired,
            remaining_instructions: in_flight + queued,
        }
    }

    /// Indices of the applications currently running, one entry per core
    /// (idle cores are omitted).
    pub fn running_app_indices(&self) -> Vec<usize> {
        self.slots.iter().flatten().map(|s| s.app_index).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes;

    #[test]
    fn initial_assignment_is_round_robin_over_apps() {
        let job = BatchJob::new(mixes::w1(), 2, 4, 1.0);
        // Core i initially runs app i of the mix.
        for core in 0..4 {
            assert_eq!(job.slot(core).unwrap().app_index, core);
            assert_eq!(job.slot(core).unwrap().copy, 0);
        }
        assert_eq!(job.status().total_copies, 8);
    }

    #[test]
    fn retiring_instructions_completes_copies_and_refills() {
        let mix = mixes::w1();
        let mut job = BatchJob::new(mix.clone(), 2, 4, 1e-9); // tiny scaled copies
        let per_copy = job.slot(0).unwrap().remaining_instructions;
        let done = job.retire(0, per_copy);
        assert_eq!(done, 1);
        // Core 0 should now run the next pending copy (app 0 again only after
        // the first copies of all other apps are dispatched).
        assert!(job.slot(0).is_some());
        assert_eq!(job.status().completed_copies, 1);
    }

    #[test]
    fn batch_completes_after_all_instructions_retired() {
        let mut job = BatchJob::new(mixes::w2(), 3, 4, 1e-9);
        let mut guard = 0;
        while !job.is_complete() {
            for core in 0..4 {
                job.retire(core, 1_000);
            }
            guard += 1;
            assert!(guard < 10_000, "batch failed to complete");
        }
        assert_eq!(job.status().completed_copies, 12);
        assert!(job.status().progress() >= 1.0 - 1e-9);
        // Once drained, cores go idle.
        assert!(job.app_on_core(0).is_none());
    }

    #[test]
    fn retire_on_idle_core_is_a_no_op_for_completion() {
        let mut job = BatchJob::new(mixes::w1(), 1, 4, 1e-9);
        while !job.is_complete() {
            for core in 0..4 {
                job.retire(core, 10_000);
            }
        }
        let before = job.status().completed_copies;
        job.retire(0, 1_000_000);
        assert_eq!(job.status().completed_copies, before);
    }

    #[test]
    fn scale_shrinks_instruction_counts_proportionally() {
        let full = BatchJob::new(mixes::w1(), 1, 4, 1.0);
        let tenth = BatchJob::new(mixes::w1(), 1, 4, 0.1);
        let f = full.slot(0).unwrap().remaining_instructions as f64;
        let t = tenth.slot(0).unwrap().remaining_instructions as f64;
        assert!((t / f - 0.1).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_is_rejected() {
        let _ = BatchJob::new(mixes::w1(), 1, 0, 1.0);
    }

    #[test]
    fn running_app_indices_reflect_active_slots() {
        let job = BatchJob::new(mixes::w3(), 1, 4, 1.0);
        assert_eq!(job.running_app_indices(), vec![0, 1, 2, 3]);
    }
}
