//! Behaviour models of the SPEC CPU2006 applications used by the Chapter 5
//! measurement study (workloads `W11` and `W12` of Table 5.2).

use crate::app::{AppBehavior, MemoryIntensity, Suite};

const MB: u64 = 1024 * 1024;

fn base(name: &'static str) -> AppBehavior {
    AppBehavior {
        name,
        suite: Suite::Cpu2006,
        instructions_bn: 1000.0,
        base_ipc: 1.4,
        l2_apki: 20.0,
        speculative_apki: 2.0,
        hot_fraction: 0.4,
        hot_bytes: MB,
        stream_bytes: 256 * MB,
        write_fraction: 0.3,
        dependent_fraction: 0.1,
        intensity: MemoryIntensity::High,
    }
}

/// `433.milc` — lattice QCD, streaming, high bandwidth.
pub fn milc() -> AppBehavior {
    AppBehavior {
        instructions_bn: 937.0,
        base_ipc: 1.2,
        l2_apki: 26.0,
        speculative_apki: 3.0,
        hot_fraction: 0.30,
        hot_bytes: 768 * 1024,
        stream_bytes: 680 * MB,
        write_fraction: 0.30,
        dependent_fraction: 0.10,
        ..base("milc")
    }
}

/// `437.leslie3d` — computational fluid dynamics.
pub fn leslie3d() -> AppBehavior {
    AppBehavior {
        instructions_bn: 1213.0,
        base_ipc: 1.5,
        l2_apki: 21.0,
        speculative_apki: 3.0,
        hot_fraction: 0.40,
        hot_bytes: 1_280 * 1024,
        stream_bytes: 125 * MB,
        write_fraction: 0.32,
        dependent_fraction: 0.10,
        ..base("leslie3d")
    }
}

/// `450.soplex` — linear programming simplex solver.
pub fn soplex() -> AppBehavior {
    AppBehavior {
        instructions_bn: 703.0,
        base_ipc: 1.1,
        l2_apki: 28.0,
        speculative_apki: 2.0,
        hot_fraction: 0.45,
        hot_bytes: 2 * MB,
        stream_bytes: 255 * MB,
        write_fraction: 0.20,
        dependent_fraction: 0.30,
        ..base("soplex")
    }
}

/// `459.GemsFDTD` — finite-difference time-domain electromagnetics.
pub fn gems_fdtd() -> AppBehavior {
    AppBehavior {
        instructions_bn: 1420.0,
        base_ipc: 1.3,
        l2_apki: 25.0,
        speculative_apki: 3.0,
        hot_fraction: 0.35,
        hot_bytes: MB,
        stream_bytes: 840 * MB,
        write_fraction: 0.33,
        dependent_fraction: 0.10,
        ..base("GemsFDTD")
    }
}

/// `462.libquantum` — quantum computer simulation, pure streaming.
pub fn libquantum() -> AppBehavior {
    AppBehavior {
        instructions_bn: 1458.0,
        base_ipc: 1.5,
        l2_apki: 33.0,
        speculative_apki: 4.0,
        hot_fraction: 0.10,
        hot_bytes: 256 * 1024,
        stream_bytes: 64 * MB,
        write_fraction: 0.25,
        dependent_fraction: 0.05,
        ..base("libquantum")
    }
}

/// `470.lbm` — lattice Boltzmann fluid dynamics, streaming with writes.
pub fn lbm() -> AppBehavior {
    AppBehavior {
        instructions_bn: 1500.0,
        base_ipc: 1.4,
        l2_apki: 30.0,
        speculative_apki: 4.0,
        hot_fraction: 0.15,
        hot_bytes: 512 * 1024,
        stream_bytes: 400 * MB,
        write_fraction: 0.45,
        dependent_fraction: 0.05,
        ..base("lbm")
    }
}

/// `471.omnetpp` — discrete event network simulation, pointer heavy.
pub fn omnetpp() -> AppBehavior {
    AppBehavior {
        instructions_bn: 687.0,
        base_ipc: 1.0,
        l2_apki: 20.0,
        speculative_apki: 1.0,
        hot_fraction: 0.55,
        hot_bytes: 2_560 * 1024,
        stream_bytes: 154 * MB,
        write_fraction: 0.25,
        dependent_fraction: 0.50,
        ..base("omnetpp")
    }
}

/// `481.wrf` — weather research and forecasting model.
pub fn wrf() -> AppBehavior {
    AppBehavior {
        instructions_bn: 1684.0,
        base_ipc: 1.6,
        l2_apki: 15.0,
        speculative_apki: 2.0,
        hot_fraction: 0.55,
        hot_bytes: 1_792 * 1024,
        stream_bytes: 680 * MB,
        write_fraction: 0.30,
        dependent_fraction: 0.12,
        ..base("wrf")
    }
}

/// All eight CPU2006 applications used in the measurement study.
pub fn all() -> Vec<AppBehavior> {
    vec![milc(), leslie3d(), soplex(), gems_fdtd(), libquantum(), lbm(), omnetpp(), wrf()]
}

/// Looks an application up by name.
pub fn by_name(name: &str) -> Option<AppBehavior> {
    all().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_apps_are_present_and_valid() {
        let apps = all();
        assert_eq!(apps.len(), 8);
        for app in &apps {
            app.validate().unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(app.suite, Suite::Cpu2006);
        }
    }

    #[test]
    fn cpu2006_runs_are_longer_than_cpu2000_runs() {
        let c2000: f64 = crate::spec2000::all().iter().map(|a| a.instructions_bn).sum::<f64>() / 12.0;
        let c2006: f64 = all().iter().map(|a| a.instructions_bn).sum::<f64>() / 8.0;
        assert!(c2006 > c2000, "CPU2006 reference runs are substantially longer");
    }

    #[test]
    fn lookup_is_case_sensitive_and_complete() {
        for name in ["milc", "leslie3d", "soplex", "GemsFDTD", "libquantum", "lbm", "omnetpp", "wrf"] {
            assert!(by_name(name).is_some(), "missing {name}");
        }
        assert!(by_name("Milc").is_none());
    }
}
