//! Quickstart: model an FBDIMM's temperature under load and let a DTM
//! policy manage it.
//!
//! Run with: `cargo run --release --example quickstart`

use dram_thermal::prelude::*;

fn main() {
    // 1. The paper's power models (Eq. 3.1 / 3.2): how much heat does a busy
    //    DIMM generate?
    let power = FbdimmPowerModel::paper_defaults();
    let amb_watts = power.amb.power_watts(3.0, 1.2, false); // 3 GB/s bypass + 1.2 GB/s local
    let dram_watts = power.dram.power_watts(0.8, 0.4); // 0.8 GB/s reads + 0.4 GB/s writes
    println!("busy DIMM power: AMB {amb_watts:.2} W, DRAM {dram_watts:.2} W");

    // 2. The isolated thermal model (Eqs. 3.3-3.5): how hot does it get?
    let mut thermal = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
    for second in 0..300 {
        thermal.step(amb_watts, dram_watts, 1.0);
        if second % 60 == 0 {
            println!("t = {second:>3} s  AMB {:.1} degC  DRAM {:.1} degC", thermal.amb_temp_c(), thermal.dram_temp_c());
        }
    }
    println!(
        "steady state would be {:.1} degC AMB — {} the 110 degC limit",
        thermal.stable_amb_c(amb_watts, dram_watts),
        if thermal.stable_amb_c(amb_watts, dram_watts) > 110.0 { "ABOVE" } else { "below" }
    );

    // 3. The two-level simulator with a DTM policy: run the W1 workload mix
    //    (swim, mgrid, applu, galgel) under adaptive core gating.
    let mut spot = MemSpot::new(MemSpotConfig::tiny(CoolingConfig::aohs_1_5()));
    let mut policy = DtmAcg::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
    let result = spot.run(&mixes::w1(), &mut policy);
    println!(
        "\nW1 under {}: {:.0} s batch time, max AMB {:.1} degC, memory energy {:.0} J, CPU energy {:.0} J",
        result.policy, result.running_time_s, result.max_amb_c, result.memory_energy_j, result.cpu_energy_j
    );
    for (mode, share) in &result.mode_residency {
        println!("  {:>5.1} % of time at {mode}", share * 100.0);
    }
}
