//! The Chapter 5 scenario: software thermal management of an FBDIMM server.
//!
//! Emulates the instrumented Intel SR1500AL in its hot box, shows the memory
//! overheating under a homogeneous `swim` workload, then compares the four
//! software DTM policies (bandwidth throttling, core gating, coordinated
//! DVFS and the combined policy) on the W3 mix.
//!
//! Run with: `cargo run --release --example server_thermal_management`

use dram_thermal::prelude::*;
use dram_thermal::workloads::spec2000;

fn main() {
    let server = Server::sr1500al();
    println!(
        "server {} — {} FBDIMMs, ambient {:.0} degC, AMB TDP {:.0} degC",
        server.kind, server.mem.dimms_per_channel, server.system_ambient_c, server.amb_tdp_c
    );

    let mut exp = PlatformExperiment::with_scale(server, 1, 0.6);

    // Figure 5.4 style: watch the AMB heat up under four copies of swim.
    println!("\nAMB temperature, 4 x swim, no DTM control:");
    let curve = exp.homogeneous_temperature_curve(&spec2000::swim(), 500.0);
    for sample in curve.iter().step_by(50) {
        println!(
            "  t = {:>5.0} s   AMB {:>6.1} degC   inlet {:>5.1} degC",
            sample.time_s, sample.amb_c, sample.ambient_c
        );
    }

    // Figure 5.6 style: the four software policies on W3.
    println!("\nW3 (swim, applu, art, lucas) under the software DTM policies:");
    let mix = mixes::w3();
    let baseline = exp.run_no_limit(&mix);
    println!("  {:<10} {:>9} {:>13} {:>11} {:>13}", "policy", "time s", "norm. time", "CPU W", "inlet degC");
    for kind in [PolicyKind::Bw, PolicyKind::Acg, PolicyKind::Cdvfs, PolicyKind::Comb] {
        let run = exp.run_policy(&mix, kind);
        let m = &run.measurement;
        println!(
            "  {:<10} {:>9.0} {:>13.2} {:>11.1} {:>13.1}",
            kind.to_string(),
            m.running_time_s,
            m.normalized_time(&baseline.measurement),
            m.cpu_power_w,
            m.memory_inlet_c
        );
    }
    println!("\n(lower normalized time is better; DTM-CDVFS/COMB also lower the memory inlet temperature)");
}
