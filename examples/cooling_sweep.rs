//! Parallel scenario sweep over the paper's cooling configurations.
//!
//! Builds a 16-cell grid — {AOHS_1.5, FDHS_1.0} × {W1, W6} × {No-limit,
//! DTM-TS, DTM-ACG, DTM-CDVFS} — and runs it through the `SweepRunner`
//! three ways: per-cell stepping on one worker (the reference execution
//! tier), batched lockstep + analytic fast-forward on one worker (the
//! default tier — same results within 1e-9, printed with its speedup, how
//! many windows were fast-forwarded and how many whole limit cycles the
//! periodic detector replayed), the same batch with its lockstep lanes
//! fanned across all cores (`SweepExecution::lane_parallel`,
//! bit-identical to the single-thread batched pass), and batched fanned
//! across all cores at cell granularity. Each pass uses its own shared `CharStore`, so
//! the printed wall-clock comparisons are fair while still showing the
//! level-1 dedup (the same mix under two cooling configs characterizes
//! once). A third pass then runs against a *disk-backed* store
//! (`target/cooling_sweep_char_cache.<shard>.jsonl` — the base path fans
//! out into one shard file per key-hash class): the first execution of
//! the example populates the shards, and every rerun loads them and
//! reports **0 level-1 misses** — the whole sweep skips the closed-loop
//! simulations.
//! All passes are written to `BENCH_cooling_sweep.json` (a separate file
//! from the sweep bench's gated `BENCH_sweep.json`, which this example
//! must not clobber), followed by a per-scheme summary of the paper's
//! headline quantities.
//!
//! A final stacked pass swaps the FBDIMM pair for a **4-high 3D stack**
//! (base logic die + four DRAM dies coupled through TSV resistances) and
//! prints the per-layer peak temperatures of the hottest position: the
//! inner die next to the hot base runs hottest, the spreader-side outer
//! die coolest — the per-layer resolution the stack topology adds.
//!
//! Run with: `cargo run --release --example cooling_sweep`

use std::collections::BTreeMap;

use dram_thermal::prelude::*;
use experiments::ch4::PolicySpec;
use experiments::harness::{bench_output_path, write_bench_json, BenchStats};
use experiments::sweep::{SweepExecution, SweepRunner, SweepScenario};

fn grid() -> Vec<SweepScenario> {
    let specs =
        vec![PolicySpec::NoLimit, PolicySpec::Ts, PolicySpec::Acg { pid: false }, PolicySpec::Cdvfs { pid: false }];
    let mut scenarios = Vec::new();
    for cooling in [CoolingConfig::aohs_1_5(), CoolingConfig::fdhs_1_0()] {
        for mix in [mixes::w1(), mixes::w6()] {
            scenarios.push(SweepScenario::isolated(cooling, mix, specs.clone()));
        }
    }
    scenarios
}

fn sweep_config(cooling: CoolingConfig) -> MemSpotConfig {
    // Small batches: the example should finish in tens of seconds while
    // still letting every scheme reach its steady throttling behaviour.
    MemSpotConfig {
        copies_per_app: 12,
        instruction_scale: 1.0,
        characterization_budget: 40_000,
        ..MemSpotConfig::paper(cooling)
    }
}

fn main() {
    let scenarios = grid();
    let cells: usize = scenarios.iter().map(SweepScenario::cells).sum();
    println!("scenario grid: {} scenarios, {} cells", scenarios.len(), cells);

    // Reference tier: every cell stepped individually through the per-cell
    // engine. The batched pass below must reproduce it within 1e-9 while
    // running the same grid faster on the same single worker.
    let per_cell = SweepRunner::with_threads(1).with_execution(SweepExecution::PerCell).run(&scenarios, sweep_config);
    println!("per-cell   (1 worker):      {:.2} s wall-clock", per_cell.wall_clock_s);

    let sequential = SweepRunner::with_threads(1).run(&scenarios, sweep_config);
    let batched_speedup = per_cell.wall_clock_s / sequential.wall_clock_s.max(1e-9);
    println!(
        "batched+FF (1 worker):      {:.2} s wall-clock  ({:.2}x vs per-cell, {} windows fast-forwarded \
         across {} cells, {} whole limit cycles replayed analytically, {} envelope bursts)",
        sequential.wall_clock_s,
        batched_speedup,
        sequential.fast_forwarded_windows,
        sequential.fast_forwarded_cells,
        sequential.periodic_cycles,
        sequential.envelope_cycles
    );

    // Lane-parallel tier: the same single batch, its lockstep lanes fanned
    // across every core (bit-identical to the batched pass above).
    let lane_workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let lane = SweepRunner::with_threads(1)
        .with_execution(SweepExecution::lane_parallel(lane_workers))
        .run(&scenarios, sweep_config);
    let lane_speedup = sequential.wall_clock_s / lane.wall_clock_s.max(1e-9);
    println!(
        "lane-parallel ({lane_workers} workers):   {:.2} s wall-clock  ({lane_speedup:.2}x vs single-thread batched)",
        lane.wall_clock_s
    );
    for (a, b) in sequential.runs.iter().zip(lane.runs.iter()) {
        assert_eq!(a.result, b.result, "lane-parallel stepping must be bit-identical to the batched pass");
    }

    let runner = SweepRunner::new();
    let parallel = runner.run(&scenarios, sweep_config);
    let speedup = sequential.wall_clock_s / parallel.wall_clock_s.max(1e-9);
    println!(
        "parallel   ({} workers):      {:.2} s wall-clock  ({:.2}x speedup)",
        parallel.threads, parallel.wall_clock_s, speedup
    );
    println!(
        "char store (parallel pass): {} hits / {} misses — each design point of a mix is characterized once",
        parallel.char_store_hits, parallel.char_store_misses
    );
    let slowest_cell = parallel.cell_wall_clock_s.iter().cloned().fold(0.0, f64::max);
    println!("slowest cell: {slowest_cell:.2} s of {} cells", parallel.runs.len());

    // Disk-backed pass: level-1 results persist across *processes*. The
    // first execution of this example computes and appends every design
    // point; any rerun loads them at startup and reports 0 misses.
    let cache_path = bench_output_path("target/cooling_sweep_char_cache.jsonl");
    let disk = match CharStore::with_disk_cache(&cache_path) {
        Ok(store) => {
            let store = std::sync::Arc::new(store);
            let outcome = SweepRunner::new().with_char_store(store).run(&scenarios, sweep_config);
            println!(
                "disk-backed ({}): {:.2} s wall-clock, {} hits / {} misses{}",
                cache_path.display(),
                outcome.wall_clock_s,
                outcome.char_store_hits,
                outcome.char_store_misses,
                if outcome.char_store_misses == 0 { "  (warm cache: level-1 fully skipped)" } else { "" }
            );
            for (a, b) in parallel.runs.iter().zip(outcome.runs.iter()) {
                assert_eq!(a.result, b.result, "disk-cached points must not change any result");
            }
            Some(outcome)
        }
        Err(e) => {
            eprintln!("disk cache unavailable at {}: {e}", cache_path.display());
            None
        }
    };

    let stats = [
        BenchStats {
            label: "cooling_sweep/percell_1_worker".to_string(),
            mean_ms: per_cell.wall_clock_s * 1e3,
            min_ms: per_cell.wall_clock_s * 1e3,
            iters: 1,
        },
        BenchStats {
            label: "cooling_sweep/sequential_1_worker".to_string(),
            mean_ms: sequential.wall_clock_s * 1e3,
            min_ms: sequential.wall_clock_s * 1e3,
            iters: 1,
        },
        BenchStats {
            label: format!("cooling_sweep/lane_parallel_{lane_workers}_workers"),
            mean_ms: lane.wall_clock_s * 1e3,
            min_ms: lane.wall_clock_s * 1e3,
            iters: 1,
        },
        BenchStats {
            label: format!("cooling_sweep/parallel_{}_workers", parallel.threads),
            mean_ms: parallel.wall_clock_s * 1e3,
            min_ms: parallel.wall_clock_s * 1e3,
            iters: 1,
        },
    ];
    // The pre-PR reference numbers were measured on the same 2-core
    // container immediately before the shared-store / allocation-free-loop
    // overhaul (group-granular sweep, per-scenario tables, exp() per node
    // per window): 2.48 s sequential, 1.71 s parallel.
    let disk_misses = disk.as_ref().map(|o| o.char_store_misses as f64).unwrap_or(-1.0);
    let disk_wall_ms = disk.as_ref().map(|o| o.wall_clock_s * 1e3).unwrap_or(-1.0);
    let metrics = [
        ("cells", cells as f64),
        ("threads", parallel.threads as f64),
        ("speedup", speedup),
        ("batched_vs_percell_speedup", batched_speedup),
        ("fast_forwarded_windows", sequential.fast_forwarded_windows as f64),
        ("fast_forwarded_cells", sequential.fast_forwarded_cells as f64),
        ("periodic_cycles", sequential.periodic_cycles as f64),
        ("envelope_cycles", sequential.envelope_cycles as f64),
        ("lane_workers", lane_workers as f64),
        ("lane_parallel_wall_ms", lane.wall_clock_s * 1e3),
        ("lane_parallel_vs_batched_speedup", lane_speedup),
        ("char_store_hits", parallel.char_store_hits as f64),
        ("char_store_misses", parallel.char_store_misses as f64),
        ("disk_pass_char_store_misses", disk_misses),
        ("disk_pass_wall_ms", disk_wall_ms),
        ("pre_pr_sequential_ms_2core_ref", 2480.0),
        ("pre_pr_parallel_ms_2core_ref", 1710.0),
    ];
    let path = bench_output_path("BENCH_cooling_sweep.json");
    match write_bench_json(&path, &stats, &metrics) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }

    // Per-scheme summary: mean normalized running time (vs the No-limit
    // baseline of the same cooling × workload) and the hottest AMB observed.
    let mut norm_times: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    let mut max_amb: BTreeMap<(String, String), f64> = BTreeMap::new();
    for run in &parallel.runs {
        if run.policy == "No-limit" {
            continue;
        }
        let base = parallel
            .runs
            .iter()
            .find(|b| b.cooling == run.cooling && b.workload == run.workload && b.policy == "No-limit")
            .expect("every scenario carries its baseline");
        let key = (run.cooling.clone(), run.policy.clone());
        norm_times.entry(key.clone()).or_default().push(run.result.normalized_time(&base.result));
        let amb = max_amb.entry(key).or_insert(f64::MIN);
        *amb = amb.max(run.result.max_amb_c);
    }

    println!("\n{:<10} {:<12} {:>16} {:>14}", "cooling", "policy", "norm. time (avg)", "max AMB degC");
    for ((cooling, policy), times) in &norm_times {
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        println!("{cooling:<10} {policy:<12} {:>16.3} {:>14.1}", mean, max_amb[&(cooling.clone(), policy.clone())]);
    }
    println!("\n(normalized time is vs the thermally unconstrained No-limit baseline;");
    println!(" every DTM scheme must stay at or below ~110 degC AMB)");

    // Stacked pass: the same machinery with a 4-high 3D stack per position.
    let stacked_scenarios = vec![
        SweepScenario::stacked(
            CoolingConfig::aohs_1_5(),
            StackKind::stacked4(),
            mixes::w1(),
            vec![PolicySpec::NoLimit, PolicySpec::Ts],
        ),
        SweepScenario::stacked(
            CoolingConfig::aohs_1_5(),
            StackKind::stacked4(),
            mixes::w6(),
            vec![PolicySpec::NoLimit],
        ),
    ];
    let stacked = SweepRunner::new().run(&stacked_scenarios, sweep_config);
    println!("\n4-high 3D-stack scenario ({} cells, {:.2} s):", stacked.runs.len(), stacked.wall_clock_s);
    println!(
        "{:<10} {:<10} {:<10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "workload", "policy", "stack", "base", "die0", "die1", "die2", "die3"
    );
    for run in &stacked.runs {
        let hot = run.result.hottest_position().expect("stacked peaks");
        println!(
            "{:<10} {:<10} {:<10} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            run.workload,
            run.policy,
            run.result.stack,
            hot.layers_c[0],
            hot.layers_c[1],
            hot.layers_c[2],
            hot.layers_c[3],
            hot.layers_c[4]
        );
        let (inner, outer) = (hot.layers_c[1], hot.layers_c[4]);
        assert!(inner > outer, "the inner die ({inner:.1}) must run hotter than the outer die ({outer:.1})");
    }
    println!("(per-layer peak temperatures in degC; the inner die next to the base is the hottest DRAM die,");
    println!(" the die under the heat spreader the coolest — vertical TSV coupling resolved per layer)");

    // Spatial-DTM pass: the paper's global DTM-BW / DTM-ACG next to the
    // per-channel (DTM-CBW) and migration-aware (DTM-MIG) policies on the
    // {cooling × mix × 4-high stack} grid. The 3D stack runs cooler than
    // the FBDIMM AMB era, so the DRAM TDP is derated to 80 degC (TRP margin
    // preserved) — under AOHS_1.5 the stack then genuinely throttles, while
    // FDHS_1.0 keeps enough headroom to run unthrottled.
    let spatial_config = |cooling: CoolingConfig| {
        let mut cfg = sweep_config(cooling);
        cfg.limits = ThermalLimits::paper_fbdimm().with_dram_tdp(80.0);
        cfg
    };
    let spatial_scenarios: Vec<SweepScenario> = [CoolingConfig::aohs_1_5(), CoolingConfig::fdhs_1_0()]
        .into_iter()
        .flat_map(|cooling| {
            [mixes::w1(), mixes::w6()]
                .into_iter()
                .map(move |mix| SweepScenario::stacked(cooling, StackKind::stacked4(), mix, PolicySpec::spatial_set()))
        })
        .collect();
    let mut baseline_scenarios = spatial_scenarios.clone();
    for s in &mut baseline_scenarios {
        s.specs = vec![PolicySpec::NoLimit];
    }
    let mut all = spatial_scenarios;
    all.extend(baseline_scenarios);
    let spatial = SweepRunner::new().run(&all, spatial_config);

    println!("\nspatial DTM on the 4-high stack, DRAM TDP 80 degC ({:.2} s):", spatial.wall_clock_s);
    println!(
        "{:<10} {:<10} {:<12} {:>10} {:>10} {:>10} {:>11} {:>12}",
        "cooling", "workload", "policy", "norm. time", "peak degC", "spread degC", "throttle %", "migrated GB"
    );
    let mut mig_flattens_somewhere = false;
    let mut mig_migrates_somewhere = false;
    for run in &spatial.runs {
        if run.policy == "No-limit" {
            continue;
        }
        let base = spatial
            .runs
            .iter()
            .find(|b| b.cooling == run.cooling && b.workload == run.workload && b.policy == "No-limit")
            .expect("spatial baseline");
        let r = &run.result;
        let throttle_pct =
            100.0 * r.channel_throttle_residency.iter().sum::<f64>() / r.channel_throttle_residency.len().max(1) as f64;
        println!(
            "{:<10} {:<10} {:<12} {:>10.3} {:>10.1} {:>10.1} {:>11.1} {:>12.2}",
            run.cooling,
            run.workload,
            run.policy,
            r.normalized_time(&base.result),
            r.hottest_layer_peak_c(),
            r.position_peak_spread_c(),
            throttle_pct,
            r.migrated_traffic_bytes / 1e9
        );
        if run.policy == "DTM-MIG" {
            let bw = spatial
                .runs
                .iter()
                .find(|b| b.cooling == run.cooling && b.workload == run.workload && b.policy == "DTM-BW")
                .expect("DTM-BW reference");
            mig_flattens_somewhere |= r.position_peak_spread_c() < bw.result.position_peak_spread_c();
            // A cell whose spread never crosses the hysteresis band stays
            // scalar and legitimately migrates nothing.
            mig_migrates_somewhere |= r.migrated_traffic_bytes > 0.0;
        }
    }
    assert!(mig_flattens_somewhere, "DTM-MIG must flatten the position spread vs DTM-BW somewhere on the grid");
    assert!(mig_migrates_somewhere, "DTM-MIG must migrate traffic somewhere on the grid");
    println!("(normalized time vs No-limit on the same cell; peak/spread over per-position hottest-layer peaks;");
    println!(" throttle % is the mean per-channel throttle residency — DTM-CBW throttles hot channels only,");
    println!(" DTM-MIG migrates traffic toward cold positions instead of capping it)");
}
