//! The formal-control study (Section 4.2.3): how much does the PID
//! controller improve a DTM scheme over plain threshold stepping?
//!
//! Runs DTM-ACG with and without the PID controller on W1 and prints the
//! temperature statistics that explain the gain: the PID variant keeps the
//! AMB closer to (but never over) the thermal limit, so the machine spends
//! more time at high running levels.
//!
//! Run with: `cargo run --release --example pid_vs_threshold`

use dram_thermal::memtherm::dtm::policy::DtmPolicy;
use dram_thermal::prelude::*;

fn trace_stats(samples: &[memtherm::sim::memspot::TempSample]) -> (f64, f64) {
    let hot: Vec<f64> = samples.iter().skip(100).map(|s| s.amb_c).collect();
    if hot.is_empty() {
        return (0.0, 0.0);
    }
    let mean = hot.iter().sum::<f64>() / hot.len() as f64;
    let max = hot.iter().cloned().fold(f64::MIN, f64::max);
    (mean, max)
}

fn main() {
    let cooling = CoolingConfig::aohs_1_5();
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();

    let mut cfg = MemSpotConfig::tiny(cooling);
    cfg.record_temp_trace = true;
    let mut spot = MemSpot::new(cfg);

    let mut variants: Vec<Box<dyn DtmPolicy>> = vec![
        Box::new(DtmAcg::new(cpu.clone(), limits)),
        Box::new(DtmAcg::with_pid(cpu.clone(), limits)),
        Box::new(DtmCdvfs::new(cpu.clone(), limits)),
        Box::new(DtmCdvfs::with_pid(cpu.clone(), limits)),
    ];

    println!("W1 under {}, AMB limit {:.0} degC (PID target 109.8 degC):\n", cooling.label(), limits.amb_tdp_c);
    println!("{:<16} {:>10} {:>16} {:>12}", "policy", "time s", "steady AMB degC", "max AMB degC");
    for policy in variants.iter_mut() {
        let r = spot.run(&mixes::w1(), policy.as_mut());
        let (mean_amb, max_amb) = trace_stats(&r.temp_trace);
        println!("{:<16} {:>10.1} {:>16.2} {:>12.2}", r.policy, r.running_time_s, mean_amb, max_amb);
    }
    println!("\nThe PID variants hold a higher average temperature without crossing the limit,");
    println!("which is exactly the mechanism the paper credits for their performance gain.");
}
