//! Compare every DTM scheme of the paper on one workload mix: running time,
//! peak temperature, traffic and energy — the quantities behind Figures
//! 4.3, 4.4, 4.9 and 4.10.
//!
//! Run with: `cargo run --release --example dtm_comparison [W1..W8]`

use dram_thermal::memtherm::dtm::policy::DtmPolicy;
use dram_thermal::prelude::*;

fn main() {
    let mix_id = std::env::args().nth(1).unwrap_or_else(|| "W1".to_string());
    let mix = mixes::by_id(&mix_id).unwrap_or_else(|| {
        eprintln!("unknown mix {mix_id}, falling back to W1");
        mixes::w1()
    });

    let cooling = CoolingConfig::aohs_1_5();
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();
    let mut spot = MemSpot::new(MemSpotConfig::tiny(cooling));

    let mut policies: Vec<Box<dyn DtmPolicy>> = vec![
        Box::new(memtherm::dtm::NoLimit::new(&cpu)),
        Box::new(DtmTs::new(cpu.clone(), limits)),
        Box::new(DtmBw::new(cpu.clone(), limits)),
        Box::new(DtmAcg::new(cpu.clone(), limits)),
        Box::new(DtmCdvfs::new(cpu.clone(), limits)),
        Box::new(DtmAcg::with_pid(cpu.clone(), limits)),
        Box::new(DtmCdvfs::with_pid(cpu.clone(), limits)),
    ];

    println!("workload {} under {} ({} copies/app, scaled)", mix.id, cooling.label(), spot.config().copies_per_app);
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "policy", "time s", "max AMB", "traffic GB", "mem E (kJ)", "cpu E (kJ)"
    );

    let mut baseline_time = None;
    for policy in policies.iter_mut() {
        let r = spot.run(&mix, policy.as_mut());
        let base = *baseline_time.get_or_insert(r.running_time_s);
        println!(
            "{:<16} {:>10.1} {:>10.1} {:>12.1} {:>12.2} {:>12.2}   (normalized time {:.2})",
            r.policy,
            r.running_time_s,
            r.max_amb_c,
            r.total_memory_bytes / 1e9,
            r.memory_energy_j / 1e3,
            r.cpu_energy_j / 1e3,
            r.running_time_s / base,
        );
    }
}
