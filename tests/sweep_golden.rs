//! Pre-refactor golden digests of the sweep grid.
//!
//! These digests were produced by the sweep stack *before* the
//! contention-free scale-out refactor (sharded `CharStore`, sharded disk
//! cache, column-split decision pass, deficit-aware scheduler) and pin the
//! bit-exact results of a Smoke-scale grid across every execution variant:
//! {per-cell vs batched-literal} × {worker counts} × {chunked vs
//! lane-parallel dispatch}. Any refactor of the store, the scheduler or the
//! batched engine must keep every variant's digest identical to these
//! constants — a single changed bit in any `f64` of any cell's result flips
//! the digest.
//!
//! The digest folds the `Debug` rendering of each cell's labels and full
//! [`MemSpotResult`] through FNV-1a. Rust's `Debug` for `f64` emits the
//! shortest round-trip decimal form, so two results digest equally iff they
//! are bit-identical (modulo NaN payloads, which the simulator never
//! distinguishes).

use experiments::ch4::PolicySpec;
use experiments::harness::Scale;
use experiments::sweep::{SweepExecution, SweepRunner, SweepScenario};
use memtherm::prelude::*;

/// Digest of the grid under literal (no fast-forward) execution — identical
/// for the per-cell engine and every batched/lane-parallel configuration.
const GOLDEN_LITERAL: u64 = 0x074b_3d8e_3c14_cded;

/// Digest of the grid under exact fast-forwarded execution (steady-state
/// and periodic fast-forward enabled, envelope fast-forward disabled) —
/// identical for every worker count, and equal to [`GOLDEN_LITERAL`]
/// because both exact fast-forwards replay converged windows analytically
/// rather than approximating them. The envelope tier is excluded here: it
/// guarantees relative 1e-9 agreement, not bit-identity, so its results
/// cannot be pinned by digest (`tests/envelope_ff.rs` owns its bound).
const GOLDEN_FAST_FORWARD: u64 = 0x074b_3d8e_3c14_cded;

/// Default options minus the envelope tier: only the bit-exact analytic
/// fast-forwards stay enabled.
fn exact_fast_forward() -> BatchOptions {
    BatchOptions { envelope_tolerance: 0.0, ..BatchOptions::default() }
}

fn grid() -> Vec<SweepScenario> {
    let specs = vec![PolicySpec::NoLimit, PolicySpec::Ts];
    vec![
        SweepScenario::isolated(CoolingConfig::aohs_1_5(), workloads::mixes::w1(), specs.clone()),
        SweepScenario::isolated(CoolingConfig::fdhs_1_0(), workloads::mixes::w1(), specs.clone()),
        SweepScenario::isolated(CoolingConfig::aohs_1_5(), workloads::mixes::w6(), specs.clone()),
        SweepScenario::stacked(CoolingConfig::aohs_1_5(), StackKind::stacked4(), workloads::mixes::w1(), specs),
    ]
}

fn digest(runs: &[experiments::ch4::MatrixRun]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for run in runs {
        for byte in format!("{}\u{1f}{}\u{1f}{}\u{1f}{:?}\n", run.cooling, run.workload, run.policy, run.result).bytes()
        {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

#[test]
fn every_execution_variant_reproduces_the_pre_refactor_literal_digest() {
    let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
    let variants: Vec<(&str, SweepRunner)> = vec![
        ("per-cell 1 thread", SweepRunner::with_threads(1).with_execution(SweepExecution::PerCell)),
        ("per-cell 4 threads", SweepRunner::with_threads(4).with_execution(SweepExecution::PerCell)),
        ("batched 1 thread", SweepRunner::with_threads(1).with_batch_options(BatchOptions::literal())),
        ("batched 3 threads", SweepRunner::with_threads(3).with_batch_options(BatchOptions::literal())),
        (
            "lane-parallel 2 workers",
            SweepRunner::with_threads(1)
                .with_execution(SweepExecution::lane_parallel(2))
                .with_batch_options(BatchOptions::literal()),
        ),
        (
            "lane-parallel 4 workers",
            SweepRunner::with_threads(1)
                .with_execution(SweepExecution::lane_parallel(4))
                .with_batch_options(BatchOptions::literal()),
        ),
    ];
    for (label, runner) in variants {
        let outcome = runner.run(&grid(), make);
        let got = digest(&outcome.runs);
        assert_eq!(
            got, GOLDEN_LITERAL,
            "{label}: digest {got:#018x} diverged from the pre-refactor golden {GOLDEN_LITERAL:#018x}"
        );
    }
}

#[test]
fn fast_forwarded_execution_reproduces_the_pre_refactor_digest_for_any_worker_count() {
    let make = |cooling: CoolingConfig| Scale::Smoke.memspot_config(cooling);
    let variants: Vec<(&str, SweepRunner)> = vec![
        ("batched+FF 1 thread", SweepRunner::with_threads(1).with_batch_options(exact_fast_forward())),
        ("batched+FF 4 threads", SweepRunner::with_threads(4).with_batch_options(exact_fast_forward())),
        (
            "batched+FF lane-parallel 4",
            SweepRunner::with_threads(1)
                .with_execution(SweepExecution::lane_parallel(4))
                .with_batch_options(exact_fast_forward()),
        ),
    ];
    for (label, runner) in variants {
        let outcome = runner.run(&grid(), make);
        let got = digest(&outcome.runs);
        assert_eq!(
            got, GOLDEN_FAST_FORWARD,
            "{label}: digest {got:#018x} diverged from the pre-refactor golden {GOLDEN_FAST_FORWARD:#018x}"
        );
    }
}
