//! Regression contract of the device-stack generalization: the legacy
//! FBDIMM two-layer scene must fall out of the stack machinery
//! **bit-identically** (golden mirror of the pre-refactor update), total
//! power into a stack must equal the sum of per-layer node inflows (energy
//! conservation, seeded property test), and the new topologies must behave
//! physically (inner die hottest, NaN-safe bufferless observations) all the
//! way through a MemSpot run.

use dram_thermal::fbdimm::FbdimmConfig;
use dram_thermal::memtherm::dtm::NoLimit;
use dram_thermal::prelude::*;
use dram_thermal::workloads::rng::SmallRng;

/// Replays the *pre-refactor* two-layer scene update verbatim: one shared
/// ambient `ThermalNode`, one AMB/DRAM pair per position, per-step decay
/// factors from `ThermalNode::decay_alpha`, and the Table 3.2 stable-state
/// expressions in their original association order.
struct LegacyMirror {
    ambient: ThermalNode,
    amb: Vec<ThermalNode>,
    dram: Vec<ThermalNode>,
    r: ThermalResistances,
    params: AmbientParams,
}

impl LegacyMirror {
    fn new(positions: usize, cooling: CoolingConfig, params: AmbientParams) -> Self {
        let start = params.system_inlet_c;
        let r = cooling.resistances();
        LegacyMirror {
            ambient: ThermalNode::new(start, params.tau_cpu_dram_s),
            amb: vec![ThermalNode::new(start, r.tau_amb_s); positions],
            dram: vec![ThermalNode::new(start, r.tau_dram_s); positions],
            r,
            params,
        }
    }

    fn step(&mut self, powers: &[FbdimmPowerBreakdown], sum_voltage_ipc: f64, dt_s: f64) {
        let ambient_alpha = ThermalNode::decay_alpha(self.ambient.tau_s(), dt_s);
        let amb_alpha = ThermalNode::decay_alpha(self.r.tau_amb_s, dt_s);
        let dram_alpha = ThermalNode::decay_alpha(self.r.tau_dram_s, dt_s);
        let stable_ambient = self.params.stable_ambient_c(sum_voltage_ipc);
        let ambient = self.ambient.step_with_alpha(stable_ambient, ambient_alpha);
        for (i, p) in powers.iter().enumerate() {
            let stable_amb = ambient + p.amb_watts * self.r.psi_amb + p.dram_watts * self.r.psi_dram_amb;
            let stable_dram = ambient + p.amb_watts * self.r.psi_amb_dram + p.dram_watts * self.r.psi_dram;
            self.amb[i].step_with_alpha(stable_amb, amb_alpha);
            self.dram[i].step_with_alpha(stable_dram, dram_alpha);
        }
    }
}

fn varying_powers(rng: &mut SmallRng, n: usize) -> Vec<FbdimmPowerBreakdown> {
    (0..n)
        .map(|_| FbdimmPowerBreakdown {
            amb_watts: 4.0 + 4.0 * rng.next_f64(),
            dram_watts: 0.98 + 2.5 * rng.next_f64(),
        })
        .collect()
}

#[test]
fn fbdimm_stack_is_bit_identical_to_the_legacy_two_layer_scene() {
    // The golden contract of the refactor: under the FBDIMM topology, every
    // temperature the stack machinery produces must carry the exact f64 bit
    // pattern of the pre-refactor pair-per-position implementation —
    // through varying powers, varying step lengths (exercising the cached
    // coefficients) and both ambient models.
    for (cooling, integrated) in
        [(CoolingConfig::aohs_1_5(), false), (CoolingConfig::fdhs_1_0(), false), (CoolingConfig::aohs_1_5(), true)]
    {
        let mem = FbdimmConfig::ddr2_667_paper();
        let limits = ThermalLimits::paper_fbdimm();
        let params = if integrated { AmbientParams::integrated(&cooling) } else { AmbientParams::isolated(&cooling) };
        let mut scene = DimmThermalScene::with_topology(
            mem.logical_channels,
            mem.dimms_per_channel,
            cooling,
            limits,
            params,
            StackKind::Fbdimm.topology(&cooling),
        );
        let mut mirror = LegacyMirror::new(scene.len(), cooling, params);
        let mut rng = SmallRng::seed_from_u64(0x5eed_57ac + integrated as u64);

        for step in 0..2_000 {
            let powers = varying_powers(&mut rng, scene.len());
            let dt = [1.0, 1.0, 1.0, 0.01, 0.5][step % 5];
            let v_ipc = if integrated { 4.0 * rng.next_f64() } else { 0.0 };
            scene.step(&powers, v_ipc, dt);
            mirror.step(&powers, v_ipc, dt);

            assert_eq!(
                scene.ambient_c().to_bits(),
                mirror.ambient.temp_c().to_bits(),
                "ambient diverged at step {step}"
            );
            for (i, pos) in scene.position_temps().iter().enumerate() {
                assert_eq!(
                    pos.amb_c.to_bits(),
                    mirror.amb[i].temp_c().to_bits(),
                    "AMB bits diverged at step {step}, position {i}: {} vs {}",
                    pos.amb_c,
                    mirror.amb[i].temp_c()
                );
                assert_eq!(
                    pos.dram_c.to_bits(),
                    mirror.dram[i].temp_c().to_bits(),
                    "DRAM bits diverged at step {step}, position {i}"
                );
            }
        }
        // The derived maxima carry the same bits as the mirror's maxima.
        let obs = scene.observe();
        let mirror_max_amb = mirror.amb.iter().map(|n| n.temp_c()).fold(f64::NEG_INFINITY, f64::max);
        let mirror_max_dram = mirror.dram.iter().map(|n| n.temp_c()).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(obs.max_amb_c.to_bits(), mirror_max_amb.to_bits());
        assert_eq!(obs.max_dram_c.to_bits(), mirror_max_dram.to_bits());
    }
}

#[test]
fn stack_power_splits_conserve_energy_for_every_topology() {
    // Seeded property test: for random cooling configurations, stack
    // depths and power draws, the per-layer watts a topology deposits must
    // sum to exactly the power entering the stack — no watt is created or
    // destroyed by the split.
    let mut rng = SmallRng::seed_from_u64(0xc0de_2026);
    for case in 0..500 {
        let cooling = CoolingConfig {
            spreader: if rng.gen_bool(0.5) { HeatSpreader::Aohs } else { HeatSpreader::Fdhs },
            air_velocity_mps: 1.0 + 2.0 * rng.next_f64(),
        };
        let kind = match rng.gen_range(0..4u64) {
            0 => StackKind::Fbdimm,
            1 => StackKind::RankPair,
            2 => StackKind::stacked4(),
            _ => StackKind::Stacked3d { dies: rng.gen_range(1..9u64) as usize },
        };
        let topology = kind.topology(&cooling);
        let p = FbdimmPowerBreakdown { amb_watts: 10.0 * rng.next_f64(), dram_watts: 5.0 * rng.next_f64() };
        let layers = p.layer_watts(&topology);
        assert_eq!(layers.len(), topology.depth());
        let sum: f64 = layers.iter().sum();
        assert!(
            (sum - p.total_watts()).abs() < 1e-12 * p.total_watts().max(1.0),
            "case {case} ({}): split sums to {sum}, {} entered",
            topology.name(),
            p.total_watts()
        );
    }
}

#[test]
fn steady_state_matches_the_psi_superposition() {
    // Energy flow check at the node level: run a stack to steady state
    // under constant power; every layer must sit at ambient + Σ Ψ[l][j]·w[j]
    // — the temperature at which its RC inflow balances its outflow.
    let cooling = CoolingConfig::aohs_1_5();
    let topology = StackKind::stacked4().topology(&cooling);
    let mut scene = DimmThermalScene::with_topology(
        1,
        1,
        cooling,
        ThermalLimits::paper_fbdimm(),
        AmbientParams::isolated(&cooling),
        topology.clone(),
    );
    let p = FbdimmPowerBreakdown { amb_watts: 6.0, dram_watts: 2.0 };
    for _ in 0..20_000 {
        scene.step(&[p], 0.0, 5.0);
    }
    let watts = p.layer_watts(&topology);
    let ambient = scene.ambient_c();
    for (l, &t) in scene.layers_of(0).iter().enumerate() {
        let expected: f64 = ambient + topology.psi_row(l).iter().zip(&watts).map(|(psi, w)| psi * w).sum::<f64>();
        assert!((t - expected).abs() < 1e-6, "layer {l}: {t} vs steady {expected}");
    }
}

#[test]
fn stacked_memspot_run_reports_per_layer_peaks_with_the_inner_die_hottest() {
    let cfg = MemSpotConfig::tiny(CoolingConfig::aohs_1_5()).with_stack(StackKind::stacked4());
    let mut spot = MemSpot::new(cfg);
    let mut policy = NoLimit::new(spot.cpu_config());
    let r = spot.run(&mixes::w1(), &mut policy);
    assert!(r.completed);
    assert_eq!(r.stack, "3d-4h");
    assert_eq!(r.position_peaks.len(), 8);
    for peak in &r.position_peaks {
        assert_eq!(peak.layers_c.len(), 5, "base + four dies");
        // Layer 1 is the die over the hot base (inner); layer 4 sits under
        // the heat spreader (outer). The stacked gradient must be resolved.
        assert!(
            peak.layers_c[1] > peak.layers_c[4],
            "inner die {:.2} must beat outer die {:.2}",
            peak.layers_c[1],
            peak.layers_c[4]
        );
    }
    // The result maxima are derived from the per-layer field.
    let field_max: f64 = r.position_peaks.iter().flat_map(|p| p.layers_c[1..].iter().copied()).fold(f64::MIN, f64::max);
    assert!((field_max - r.max_dram_c).abs() < 1e-9, "field {field_max} vs reported {}", r.max_dram_c);
}

#[test]
fn rank_pair_memspot_run_is_nan_safe_end_to_end() {
    // A DDR4/5 rank pair has no AMB: the run must report a NaN buffer
    // maximum (not a fake 0.0), DTM-TS must still throttle and release on
    // the DRAM condition alone, and the batch must complete.
    let cfg = MemSpotConfig::tiny(CoolingConfig::aohs_1_5()).with_stack(StackKind::RankPair);
    let mut spot = MemSpot::new(cfg);
    let cpu = spot.cpu_config().clone();
    let mut ts = DtmTs::new(cpu, ThermalLimits::paper_fbdimm());
    let r = spot.run(&mixes::w1(), &mut ts);
    assert!(r.completed, "DTM-TS must not latch shut on the missing AMB");
    assert_eq!(r.stack, "rank-pair");
    assert!(r.max_amb_c.is_nan(), "no buffer layer -> NaN maximum, got {}", r.max_amb_c);
    assert!(r.max_dram_c > 50.0 && r.max_dram_c < 85.6, "DRAM TDP still enforced: {:.2}", r.max_dram_c);
    assert!(r.position_peaks.iter().all(|p| p.max_amb_c.is_nan()));
    assert!(r.hottest_position().is_some(), "hottest position is NaN-safe");
    // Equality is NaN-aware: a bit-identical rerun compares equal even
    // though max_amb_c is NaN (deterministic simulation + shared points).
    let mut ts2 = DtmTs::new(spot.cpu_config().clone(), ThermalLimits::paper_fbdimm());
    let r2 = spot.run(&mixes::w1(), &mut ts2);
    assert_eq!(r, r2, "bufferless reruns must compare equal");
}

#[test]
fn from_hottest_round_trips_bufferless_observations() {
    // Satellite contract: synthesizing an observation from a bufferless
    // scene's maxima and feeding it back to the policies is lossless with
    // respect to every limit decision.
    let limits = ThermalLimits::paper_fbdimm();
    let obs = ThermalObservation::from_hottest(f64::NAN, 84.5);
    assert_eq!(obs.max_amb_opt(), None);
    assert!(!obs.over_tdp(&limits));
    assert!(!obs.released(&limits), "DRAM above its TRP is not released");
    assert!(ThermalObservation::from_hottest(f64::NAN, 83.9).released(&limits));
    assert!(ThermalObservation::from_hottest(f64::NAN, 85.0).over_tdp(&limits));

    // The threshold and PID selectors both survive the NaN.
    let mut ts = DtmTs::new(CpuConfig::paper_quad_core(), limits);
    assert!(!ts.decide_temps(f64::NAN, 85.2, 0.01).makes_progress(), "DRAM TDP shuts down");
    assert!(ts.decide_temps(f64::NAN, 83.5, 0.01).makes_progress(), "and releases without an AMB");
    let mut bw = DtmBw::with_pid(CpuConfig::paper_quad_core(), limits);
    let mut throttled = false;
    for _ in 0..50 {
        // Held just under the DRAM TDP the PID must throttle — the decision
        // rests entirely on the DRAM controller.
        throttled |= bw.decide_temps(f64::NAN, 84.9, 0.01).bandwidth_cap.is_some();
    }
    assert!(throttled, "a hot DRAM must still drive PID throttling without an AMB");
    // After the hot spell the PID must recover (its state was never
    // poisoned by the NaN).
    bw.reset();
    let cool = bw.decide_temps(f64::NAN, 60.0, 0.01);
    assert_eq!(cool.bandwidth_cap, None, "cool DRAM -> no cap");
}
