//! End-to-end integration tests of the second-level thermal simulator and
//! the DTM schemes: the headline qualitative results of the paper must hold
//! on a reduced-size batch.

use dram_thermal::memtherm::dtm::policy::DtmPolicy;
use dram_thermal::prelude::*;

fn run(policy: &mut dyn DtmPolicy, cooling: CoolingConfig, integrated: bool) -> memtherm::sim::memspot::MemSpotResult {
    let mut cfg = MemSpotConfig::tiny(cooling);
    if integrated {
        cfg = cfg.with_integrated(None);
    }
    let mut spot = MemSpot::new(cfg);
    spot.run(&mixes::w1(), policy)
}

#[test]
fn every_dtm_scheme_respects_the_thermal_limit_that_no_limit_violates() {
    let cooling = CoolingConfig::aohs_1_5();
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();

    let mut baseline = memtherm::dtm::NoLimit::new(&cpu);
    let base = run(&mut baseline, cooling, false);
    assert!(base.max_amb_c > limits.amb_tdp_c, "the no-limit baseline must overheat ({:.1})", base.max_amb_c);

    let mut policies: Vec<Box<dyn DtmPolicy>> = vec![
        Box::new(DtmTs::new(cpu.clone(), limits)),
        Box::new(DtmBw::new(cpu.clone(), limits)),
        Box::new(DtmAcg::new(cpu.clone(), limits)),
        Box::new(DtmCdvfs::new(cpu.clone(), limits)),
        Box::new(DtmAcg::with_pid(cpu.clone(), limits)),
        Box::new(DtmCdvfs::with_pid(cpu.clone(), limits)),
    ];
    for policy in policies.iter_mut() {
        let r = run(policy.as_mut(), cooling, false);
        assert!(r.completed, "{} did not finish the batch", r.policy);
        // One DTM interval of heating above the TDP is the worst admissible
        // overshoot (the paper observes the same for DTM-CDVFS without PID).
        assert!(r.max_amb_c < limits.amb_tdp_c + 0.6, "{} overshot to {:.2} degC", r.policy, r.max_amb_c);
        assert!(r.running_time_s >= base.running_time_s * 0.99, "{} cannot be faster than no-limit", r.policy);
    }
}

#[test]
fn the_proposed_schemes_beat_thermal_shutdown_on_w1() {
    let cooling = CoolingConfig::aohs_1_5();
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();

    let mut ts = DtmTs::new(cpu.clone(), limits);
    let mut acg = DtmAcg::new(cpu.clone(), limits);
    let rt = run(&mut ts, cooling, false);
    let ra = run(&mut acg, cooling, false);
    assert!(
        ra.running_time_s <= rt.running_time_s,
        "DTM-ACG ({:.0} s) must not lose to DTM-TS ({:.0} s)",
        ra.running_time_s,
        rt.running_time_s
    );
    // The ACG advantage comes with a memory-traffic reduction.
    assert!(ra.total_memory_bytes <= rt.total_memory_bytes * 1.02);
}

#[test]
fn cdvfs_gains_more_under_the_integrated_thermal_model() {
    // Section 4.5: with CPU->memory thermal interaction modelled, DTM-CDVFS
    // improves markedly because it cools the air the DIMMs breathe.
    let cooling = CoolingConfig::fdhs_1_0();
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();

    let mut bw_iso = DtmBw::new(cpu.clone(), limits);
    let mut cdvfs_iso = DtmCdvfs::new(cpu.clone(), limits);
    let iso_ratio =
        run(&mut cdvfs_iso, cooling, false).running_time_s / run(&mut bw_iso, cooling, false).running_time_s;

    let mut bw_int = DtmBw::new(cpu.clone(), limits);
    let mut cdvfs_int = DtmCdvfs::new(cpu.clone(), limits);
    let int_ratio = run(&mut cdvfs_int, cooling, true).running_time_s / run(&mut bw_int, cooling, true).running_time_s;

    assert!(
        int_ratio <= iso_ratio + 0.02,
        "CDVFS/BW ratio should improve (or at least not degrade) under the integrated model: isolated {iso_ratio:.3}, integrated {int_ratio:.3}"
    );
}

#[test]
fn processor_energy_ordering_matches_figure_4_10() {
    // Paper: processor energy increases in the order CDVFS, ACG, TS, BW.
    let cooling = CoolingConfig::aohs_1_5();
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();

    let mut cdvfs = DtmCdvfs::new(cpu.clone(), limits);
    let mut acg = DtmAcg::new(cpu.clone(), limits);
    let mut bw = DtmBw::new(cpu.clone(), limits);

    let e_cdvfs = run(&mut cdvfs, cooling, false).cpu_energy_j;
    let e_acg = run(&mut acg, cooling, false).cpu_energy_j;
    let e_bw = run(&mut bw, cooling, false).cpu_energy_j;

    assert!(e_cdvfs < e_bw, "CDVFS ({e_cdvfs:.0} J) must use less processor energy than BW ({e_bw:.0} J)");
    assert!(e_acg < e_bw, "ACG ({e_acg:.0} J) must use less processor energy than BW ({e_bw:.0} J)");
}
