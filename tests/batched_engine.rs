//! Golden regression suite for the batched execution tier
//! (`memtherm::sim::batch`): the literal lockstep path must be
//! bit-identical to the per-cell engine for any batch composition, and the
//! steady-state fast-forward must stay within 1e-9 of literal stepping for
//! every reported quantity.
//!
//! The bit-identity tests double as the CI guard demanded by the issue:
//! they assert the fast-forward path never engages while literal results
//! are being pinned (`fast_forwarded_windows == 0` per cell).

use std::sync::Arc;

use dram_thermal::memtherm::dtm::{DtmAcg, DtmBw, DtmCdvfs, DtmTs, NoLimit};
use dram_thermal::prelude::*;

/// Tiny deterministic PRNG (xorshift64*) so the "random" batch composition
/// is reproducible from a literal seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

fn base_config(cooling: CoolingConfig) -> MemSpotConfig {
    MemSpotConfig {
        copies_per_app: 2,
        instruction_scale: 0.6,
        characterization_budget: 8_000,
        max_sim_time_s: 2_000.0,
        ..MemSpotConfig::paper(cooling)
    }
}

fn policy_for(kind: u64, cpu: &CpuConfig, limits: ThermalLimits) -> Box<dyn DtmPolicy> {
    match kind % 5 {
        0 => Box::new(NoLimit::new(cpu)),
        1 => Box::new(DtmTs::new(cpu.clone(), limits)),
        2 => Box::new(DtmAcg::new(cpu.clone(), limits)),
        3 => Box::new(DtmCdvfs::new(cpu.clone(), limits)),
        _ => Box::new(DtmBw::with_pid(cpu.clone(), limits)),
    }
}

/// Runs the same cells through the per-cell engine, one at a time.
fn run_per_cell(
    cpu: &CpuConfig,
    mem: FbdimmConfig,
    cells: Vec<BatchCell>,
    store: &Arc<CharStore>,
) -> Vec<MemSpotResult> {
    cells
        .into_iter()
        .map(|cell| {
            let mut spot = MemSpot::with_store(cpu.clone(), mem, cell.config, Arc::clone(store));
            spot.set_level1_rotation_threads(1);
            let mut policy = cell.policy;
            spot.run(&cell.mix, policy.as_mut())
        })
        .collect()
}

#[test]
fn literal_batched_is_bit_identical_to_the_per_cell_engine_across_random_batches() {
    // Seeded sweep over {stack, dt, cooling, mix, policy} combinations: the
    // literal batched tier is a pure memory-layout transformation, so every
    // simulated quantity must carry identical bits — including heterogeneous
    // batches where cells land in different lockstep lanes (different step
    // lengths and stack topologies) and lanes whose members drop out at
    // different times.
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let store = Arc::new(CharStore::new());
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);

    let stacks = [StackKind::Fbdimm, StackKind::RankPair, StackKind::stacked4()];
    let coolings = [CoolingConfig::aohs_1_5(), CoolingConfig::fdhs_1_0()];
    let mixes_pool = [mixes::w1(), mixes::w6()];
    let dts = [0.005, 0.010, 0.020];

    let build_cells = |rng: &mut Rng| {
        (0..6)
            .map(|i| {
                let stack = *rng.pick(&stacks);
                let mut cfg = base_config(*rng.pick(&coolings)).with_stack(stack);
                cfg.window_s = *rng.pick(&dts);
                cfg.dtm_interval_s = cfg.window_s;
                let mix = rng.pick(&mixes_pool).clone();
                let policy = policy_for(i ^ (rng.next() % 2), &cpu, cfg.limits);
                BatchCell::new(&cpu, &mem, cfg, mix, policy, Arc::clone(&store)).with_rotation_threads(1)
            })
            .collect::<Vec<_>>()
    };

    let batched_cells = build_cells(&mut rng);
    let mut rng = Rng(0x5EED_CAFE_F00D_0001);
    let percell_cells = build_cells(&mut rng);

    let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
    let batched = engine.run(batched_cells, &BatchOptions::literal());
    let per_cell = run_per_cell(&cpu, mem, percell_cells, &store);

    assert_eq!(batched.len(), per_cell.len());
    for (i, ((result, stats), expected)) in batched.iter().zip(&per_cell).enumerate() {
        // CI guard: the fast-forward path must never engage while literal
        // bit-identity is being pinned.
        assert_eq!(stats.fast_forwarded_windows, 0, "cell {i} fast-forwarded during the literal golden suite");
        assert!(stats.stepped_windows > 0, "cell {i} never stepped");
        assert_eq!(
            result, expected,
            "cell {i} ({}/{}) diverged from the per-cell engine",
            result.workload, result.policy
        );
    }
}

fn assert_abs(a: f64, b: f64, what: &str) {
    if a.is_nan() && b.is_nan() {
        return;
    }
    assert!((a - b).abs() <= 1e-9, "{what}: {a} vs {b} (abs err {})", (a - b).abs());
}

fn assert_rel(a: f64, b: f64, what: &str) {
    let denom = a.abs().max(b.abs()).max(1e-300);
    assert!(((a - b) / denom).abs() <= 1e-9, "{what}: {a} vs {b} (rel err {})", ((a - b) / denom).abs());
}

/// Field-by-field comparison of a fast-forwarded result against its literal
/// reference: temperatures and residency fractions within 1e-9 absolute,
/// energies / times / instruction counts within 1e-9 relative.
fn assert_within_ff_tolerance(ff: &MemSpotResult, lit: &MemSpotResult, label: &str) {
    assert_eq!(ff.workload, lit.workload, "{label}: workload");
    assert_eq!(ff.policy, lit.policy, "{label}: policy");
    assert_eq!(ff.completed, lit.completed, "{label}: completion");
    assert_rel(ff.running_time_s, lit.running_time_s, &format!("{label}: running_time_s"));
    assert_rel(ff.total_instructions, lit.total_instructions, &format!("{label}: total_instructions"));
    assert_rel(ff.total_memory_bytes, lit.total_memory_bytes, &format!("{label}: total_memory_bytes"));
    assert_rel(ff.total_l2_misses, lit.total_l2_misses, &format!("{label}: total_l2_misses"));
    assert_rel(ff.memory_energy_j, lit.memory_energy_j, &format!("{label}: memory_energy_j"));
    assert_rel(ff.cpu_energy_j, lit.cpu_energy_j, &format!("{label}: cpu_energy_j"));
    assert_rel(ff.avg_memory_power_w, lit.avg_memory_power_w, &format!("{label}: avg_memory_power_w"));
    assert_rel(ff.avg_cpu_power_w, lit.avg_cpu_power_w, &format!("{label}: avg_cpu_power_w"));
    assert_abs(ff.avg_ambient_c, lit.avg_ambient_c, &format!("{label}: avg_ambient_c"));
    assert_abs(ff.max_amb_c, lit.max_amb_c, &format!("{label}: max_amb_c"));
    assert_abs(ff.max_dram_c, lit.max_dram_c, &format!("{label}: max_dram_c"));
    assert_eq!(
        ff.mode_residency.keys().collect::<Vec<_>>(),
        lit.mode_residency.keys().collect::<Vec<_>>(),
        "{label}: residency modes"
    );
    for (mode, frac) in &ff.mode_residency {
        assert_abs(*frac, lit.mode_residency[mode], &format!("{label}: residency[{mode}]"));
    }
    assert_eq!(ff.position_peaks.len(), lit.position_peaks.len(), "{label}: peak count");
    for (a, b) in ff.position_peaks.iter().zip(&lit.position_peaks) {
        assert_eq!((a.channel, a.dimm), (b.channel, b.dimm), "{label}: peak position");
        assert_abs(a.max_amb_c, b.max_amb_c, &format!("{label}: peak amb ({},{})", a.channel, a.dimm));
        assert_abs(a.max_dram_c, b.max_dram_c, &format!("{label}: peak dram ({},{})", a.channel, a.dimm));
        for (l, (x, y)) in a.layers_c.iter().zip(&b.layers_c).enumerate() {
            assert_abs(*x, *y, &format!("{label}: peak layer {l} ({},{})", a.channel, a.dimm));
        }
    }
    for (ch, (a, b)) in ff.channel_throttle_residency.iter().zip(&lit.channel_throttle_residency).enumerate() {
        assert_abs(*a, *b, &format!("{label}: throttle residency ch{ch}"));
    }
}

#[test]
fn fast_forward_matches_literal_stepping_within_1e9() {
    // A thermally steady cell (No-limit: the plan never changes) must
    // fast-forward once its field reaches the RC fixed point, a latched
    // DTM-TS cell may, and a PID-driven cell must never (its integral state
    // makes it formally non-steady) — yet every reported quantity of every
    // cell stays within 1e-9 of the literal run.
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let store = Arc::new(CharStore::new());

    let long = |cooling: CoolingConfig| MemSpotConfig { copies_per_app: 12, ..base_config(cooling) };
    let build_cells = || {
        vec![
            BatchCell::new(
                &cpu,
                &mem,
                long(CoolingConfig::aohs_1_5()),
                mixes::w1(),
                Box::new(NoLimit::new(&cpu)),
                Arc::clone(&store),
            )
            .with_rotation_threads(1),
            BatchCell::new(
                &cpu,
                &mem,
                long(CoolingConfig::fdhs_1_0()),
                mixes::w1(),
                Box::new(DtmTs::new(cpu.clone(), ThermalLimits::paper_fbdimm())),
                Arc::clone(&store),
            )
            .with_rotation_threads(1),
            BatchCell::new(
                &cpu,
                &mem,
                long(CoolingConfig::aohs_1_5()),
                mixes::w6(),
                Box::new(DtmAcg::with_pid(cpu.clone(), ThermalLimits::paper_fbdimm())),
                Arc::clone(&store),
            )
            .with_rotation_threads(1),
        ]
    };

    let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
    let literal = engine.run(build_cells(), &BatchOptions::literal());
    let fast = engine.run(build_cells(), &BatchOptions::default());

    assert!(literal.iter().all(|(_, s)| s.fast_forwarded_windows == 0));
    let total_ff: u64 = fast.iter().map(|(_, s)| s.fast_forwarded_windows).sum();
    assert!(total_ff > 0, "no cell fast-forwarded; the steady-state detector never engaged");
    assert!(
        fast[0].1.fast_forwarded_windows > 0,
        "the No-limit cell must fast-forward once its field converges (stepped {})",
        fast[0].1.stepped_windows
    );
    let (_, pid_stats) = &fast[2];
    assert_eq!(pid_stats.fast_forwarded_windows, 0, "a PID-driven policy is never steady and must step literally");

    for ((ff, _), (lit, _)) in fast.iter().zip(&literal) {
        assert_within_ff_tolerance(ff, lit, &format!("{}/{}", ff.workload, ff.policy));
    }

    // Window bookkeeping must be conserved: stepped + fast-forwarded under
    // fast-forward equals the literal window count of the same cell.
    for ((_, f), (_, l)) in fast.iter().zip(&literal) {
        assert_eq!(f.stepped_windows + f.fast_forwarded_windows, l.stepped_windows, "window count drifted");
    }
}

#[test]
fn lane_parallel_stepping_is_bit_identical_across_worker_counts() {
    // Lanes are independent and a column-chunked lane preserves each cell's
    // operation sequence, so every worker count must reproduce the
    // single-threaded batched results bit-for-bit — both for a
    // heterogeneous batch (many lanes, fanned across threads) and for a
    // homogeneous batch (one lane, split column-wise so every worker still
    // has work).
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let store = Arc::new(CharStore::new());

    let stacks = [StackKind::Fbdimm, StackKind::RankPair, StackKind::stacked4()];
    let coolings = [CoolingConfig::aohs_1_5(), CoolingConfig::fdhs_1_0()];
    let mixes_pool = [mixes::w1(), mixes::w6()];
    let dts = [0.005, 0.010, 0.020];

    let heterogeneous = |rng: &mut Rng| {
        (0..6)
            .map(|i| {
                let stack = *rng.pick(&stacks);
                let mut cfg = base_config(*rng.pick(&coolings)).with_stack(stack);
                cfg.window_s = *rng.pick(&dts);
                cfg.dtm_interval_s = cfg.window_s;
                let mix = rng.pick(&mixes_pool).clone();
                let policy = policy_for(i ^ (rng.next() % 2), &cpu, cfg.limits);
                BatchCell::new(&cpu, &mem, cfg, mix, policy, Arc::clone(&store)).with_rotation_threads(1)
            })
            .collect::<Vec<_>>()
    };
    let homogeneous = || {
        (0..5u64)
            .map(|i| {
                let cfg = base_config(CoolingConfig::aohs_1_5());
                let policy = policy_for(i, &cpu, cfg.limits);
                BatchCell::new(&cpu, &mem, cfg, mixes::w1(), policy, Arc::clone(&store)).with_rotation_threads(1)
            })
            .collect::<Vec<_>>()
    };

    let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
    for workers in [2usize, 4] {
        let mut rng = Rng(0x5EED_CAFE_F00D_0002);
        let baseline = engine.run(heterogeneous(&mut rng), &BatchOptions::literal());
        let mut rng = Rng(0x5EED_CAFE_F00D_0002);
        let parallel = engine.run_with_workers(heterogeneous(&mut rng), &BatchOptions::literal(), workers);
        assert_eq!(baseline.len(), parallel.len());
        for (i, ((r, s), (pr, ps))) in baseline.iter().zip(&parallel).enumerate() {
            assert_eq!(r, pr, "heterogeneous cell {i} diverged under {workers} workers");
            assert_eq!(s, ps, "heterogeneous cell {i} stats diverged under {workers} workers");
        }
    }
    let baseline = engine.run(homogeneous(), &BatchOptions::literal());
    let chunked = engine.run_with_workers(homogeneous(), &BatchOptions::literal(), 4);
    for (i, ((r, s), (pr, ps))) in baseline.iter().zip(&chunked).enumerate() {
        assert_eq!(r, pr, "homogeneous cell {i} diverged under column chunking");
        assert_eq!(s, ps, "homogeneous cell {i} stats diverged under column chunking");
    }
}

#[test]
fn periodic_limit_cycle_fast_forward_matches_literal_within_1e9() {
    // At a DTM cadence comparable to the device time constants a threshold
    // policy relaxes into a relay oscillation: the plan sequence locks into
    // an exact limit cycle with observations far from the thresholds. Every
    // cell must leave the literal lane through an analytic tier — the cycle
    // detector replaying verified whole cycles, or the envelope tier's
    // exact decision replay re-deciding each virtual window from the keyed
    // device maxima — with every reported quantity within 1e-9 of the
    // literal run and the window bookkeeping conserved, and at least one
    // cell must still exit via the cycle detector so the periodic tier
    // keeps regression coverage. (At the paper's 10 ms cadence the same
    // policies slip quasiperiodically and the cycle verifier must keep
    // refusing; the random-batch golden suite above pins that behavior.)
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let store = Arc::new(CharStore::new());

    let relay = |dt: f64| {
        let mut cfg = MemSpotConfig {
            copies_per_app: 32,
            instruction_scale: 0.6,
            characterization_budget: 8_000,
            max_sim_time_s: 4_000.0,
            ..MemSpotConfig::paper(CoolingConfig::aohs_1_5())
        };
        cfg.window_s = dt;
        cfg.dtm_interval_s = dt;
        cfg
    };
    let build_cells = || {
        let acg = relay(5.0);
        let cdvfs = relay(25.0);
        vec![
            BatchCell::new(
                &cpu,
                &mem,
                acg,
                mixes::w1(),
                Box::new(DtmAcg::new(cpu.clone(), acg.limits)),
                Arc::clone(&store),
            )
            .with_rotation_threads(1),
            BatchCell::new(
                &cpu,
                &mem,
                cdvfs,
                mixes::w1(),
                Box::new(DtmCdvfs::new(cpu.clone(), cdvfs.limits)),
                Arc::clone(&store),
            )
            .with_rotation_threads(1),
        ]
    };

    let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
    let literal = engine.run(build_cells(), &BatchOptions::literal());
    let fast = engine.run(build_cells(), &BatchOptions::default());

    assert!(literal.iter().all(|(_, s)| s.fast_forwarded_windows == 0 && s.periodic_cycles == 0));
    assert!(
        fast.iter().any(|(_, s)| s.periodic_cycles > 0),
        "no cell exited via the cycle detector — the periodic tier lost coverage"
    );
    for (i, ((ff, fs), (lit, ls))) in fast.iter().zip(&literal).enumerate() {
        assert!(
            fs.periodic_cycles > 0 || fs.envelope_cycles > 0,
            "cell {i} ({}) never left the literal lane analytically (stepped {})",
            ff.policy,
            fs.stepped_windows
        );
        assert!(fs.fast_forwarded_windows > 0, "cell {i} ({}) never fast-forwarded", ff.policy);
        assert_eq!(
            fs.stepped_windows + fs.fast_forwarded_windows,
            ls.stepped_windows,
            "cell {i} ({}) window count drifted",
            ff.policy
        );
        assert_within_ff_tolerance(ff, lit, &format!("{}/{}", ff.workload, ff.policy));
    }
}
