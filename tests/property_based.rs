//! Property-based tests (proptest) of the core invariants across crates:
//! memory-simulator timing, cache behaviour, thermal-model physics, power
//! monotonicity and DTM decision monotonicity.

use dram_thermal::cpu::{CacheConfig, SetAssocCache};
use dram_thermal::fbdimm::{ActivationThrottle, FbdimmConfig, MemRequest, MemorySystem, RequestKind};
use dram_thermal::memtherm::dtm::emergency::EmergencyThresholds;
use dram_thermal::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Completions never precede their arrival and respect the DRAM core
    /// latency, for any mix of reads and writes.
    #[test]
    fn memory_completions_respect_causality(lines in proptest::collection::vec((0u64..1_000_000, any::<bool>()), 1..200)) {
        let cfg = FbdimmConfig::ddr2_667_paper();
        let mut mem = MemorySystem::new(cfg);
        for (line, is_write) in &lines {
            let kind = if *is_write { RequestKind::Write } else { RequestKind::Read };
            mem.enqueue(MemRequest::new(*line, kind, 0)).unwrap();
        }
        let completions = mem.run_until_idle();
        prop_assert_eq!(completions.len(), lines.len());
        for c in &completions {
            prop_assert!(c.finish_ps >= c.arrival_ps);
            prop_assert!(c.latency_ps() >= cfg.timings.t_rcd);
        }
    }

    /// The activation throttle never admits more activations per window than
    /// its configured limit.
    #[test]
    fn throttle_never_exceeds_its_budget(limit in 1u64..50, n in 1usize..400) {
        let window = 1_000_000u64; // 1 us
        let mut throttle = ActivationThrottle::with_limit(window, limit);
        let mut grants: Vec<u64> = Vec::new();
        let mut t = 0u64;
        for _ in 0..n {
            t = throttle.reserve(t);
            grants.push(t);
        }
        // Count activations granted inside any single window.
        for start in grants.iter().map(|g| (g / window) * window) {
            let in_window = grants.iter().filter(|&&g| g >= start && g < start + window).count() as u64;
            prop_assert!(in_window <= limit, "window starting at {} admitted {} > {}", start, in_window, limit);
        }
    }

    /// A cache never reports more hits than accesses, and a second pass over
    /// a working set no larger than the cache always hits.
    #[test]
    fn cache_hit_invariants(lines in proptest::collection::vec(0u64..512, 1..256)) {
        let mut cache = SetAssocCache::new(CacheConfig { capacity_bytes: 64 * 1024, associativity: 8, line_bytes: 64 });
        for &l in &lines {
            cache.access(l, false);
        }
        let stats = cache.stats();
        prop_assert!(stats.misses <= stats.accesses);
        // 512 distinct lines at most = 32 KiB < 64 KiB capacity: second pass hits.
        let mut unique: Vec<u64> = lines.clone();
        unique.sort_unstable();
        unique.dedup();
        for &l in &unique {
            prop_assert!(cache.access(l, false).is_hit());
        }
    }

    /// The thermal RC node always moves monotonically toward the stable
    /// temperature and never overshoots it.
    #[test]
    fn thermal_node_never_overshoots(start in 20.0f64..120.0, stable in 20.0f64..140.0, steps in 1usize..500) {
        let mut node = ThermalNode::new(start, 50.0);
        let mut prev = start;
        for _ in 0..steps {
            let t = node.step(stable, 1.0);
            if stable >= start {
                prop_assert!(t >= prev - 1e-9 && t <= stable + 1e-9);
            } else {
                prop_assert!(t <= prev + 1e-9 && t >= stable - 1e-9);
            }
            prev = t;
        }
    }

    /// Steady-state device temperatures increase monotonically with power.
    #[test]
    fn stable_temperature_is_monotone_in_power(p1 in 0.0f64..10.0, p2 in 0.0f64..10.0) {
        let model = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(model.stable_amb_c(lo, 1.0) <= model.stable_amb_c(hi, 1.0));
        prop_assert!(model.stable_dram_c(1.0, lo) <= model.stable_dram_c(1.0, hi));
    }

    /// FBDIMM power models are monotone in throughput and never report less
    /// than idle power.
    #[test]
    fn power_models_are_monotone(read in 0.0f64..12.0, write in 0.0f64..6.0, bypass in 0.0f64..12.0) {
        let power = FbdimmPowerModel::paper_defaults();
        let dram = power.dram.power_watts(read, write);
        prop_assert!(dram >= power.dram.power_watts(0.0, 0.0));
        prop_assert!(power.dram.power_watts(read + 1.0, write) >= dram);
        let amb = power.amb.power_watts(bypass, read, false);
        prop_assert!(amb >= power.amb.power_watts(0.0, 0.0, false));
        prop_assert!(power.amb.power_watts(bypass, read + 0.5, false) >= amb);
    }

    /// The thermal emergency level never decreases as temperature rises.
    #[test]
    fn emergency_level_is_monotone_in_temperature(t1 in 60.0f64..120.0, t2 in 60.0f64..120.0) {
        let thresholds = EmergencyThresholds::table_4_3(&ThermalLimits::paper_fbdimm());
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(thresholds.amb_level(lo) <= thresholds.amb_level(hi));
    }

    /// DTM-ACG never enables more cores at a hotter temperature than at a
    /// cooler one (decisions are monotone).
    #[test]
    fn acg_decisions_are_monotone(t1 in 90.0f64..112.0, t2 in 90.0f64..112.0) {
        let cpu = CpuConfig::paper_quad_core();
        let limits = ThermalLimits::paper_fbdimm();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        // Fresh policies: threshold decisions are stateless.
        let mut cool = DtmAcg::new(cpu.clone(), limits);
        let mut hot = DtmAcg::new(cpu.clone(), limits);
        let cores_cool = cool.decide(lo, 70.0, 1.0).active_cores;
        let cores_hot = hot.decide(hi, 70.0, 1.0).active_cores;
        prop_assert!(cores_hot <= cores_cool);
    }

    /// Synthetic workload streams always stay within their declared
    /// footprint and attribute at least one instruction per access.
    #[test]
    fn workload_streams_are_well_formed(seed in any::<u64>()) {
        use dram_thermal::workloads::{spec2000, AccessStream};
        let app = spec2000::art();
        let mut stream = AccessStream::new(&app, seed);
        let fp = stream.footprint_lines();
        for _ in 0..500 {
            let a = stream.next_access();
            prop_assert!(a.line < fp);
            prop_assert!(a.gap_instructions >= 1);
        }
    }
}

// `DtmPolicy::decide` needs the trait in scope for the ACG property above.
use dram_thermal::memtherm::dtm::policy::DtmPolicy;
