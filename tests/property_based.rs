//! Property-based tests of the core invariants across crates:
//! memory-simulator timing, cache behaviour, thermal-model physics, power
//! monotonicity/conservation and DTM decision monotonicity.
//!
//! The container builds offline, so instead of an external property-testing
//! framework the tests draw their cases from the workspace's deterministic
//! [`SmallRng`] — each property is checked over a few dozen seeded random
//! inputs, and a failing case is reproducible from its printed seed.

use dram_thermal::cpu::{CacheConfig, SetAssocCache};
use dram_thermal::fbdimm::{
    ActivationThrottle, DimmTraffic, FbdimmConfig, MemRequest, MemorySystem, RequestKind, TrafficWindow,
};
use dram_thermal::memtherm::dtm::emergency::EmergencyThresholds;
use dram_thermal::memtherm::dtm::policy::DtmPolicy;
use dram_thermal::prelude::*;
use dram_thermal::workloads::rng::SmallRng;

const CASES: u64 = 48;

/// Runs `body` for `CASES` deterministic seeds, printing the failing seed.
fn for_each_case(name: &str, mut body: impl FnMut(&mut SmallRng)) {
    for seed in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD1A0_0000 + seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(panic) = result {
            eprintln!("property '{name}' failed for seed {seed}");
            std::panic::resume_unwind(panic);
        }
    }
}

/// Completions never precede their arrival and respect the DRAM core
/// latency, for any mix of reads and writes.
#[test]
fn memory_completions_respect_causality() {
    for_each_case("memory_completions_respect_causality", |rng| {
        let cfg = FbdimmConfig::ddr2_667_paper();
        let mut mem = MemorySystem::new(cfg);
        let n = rng.gen_range(1..200u64) as usize;
        for _ in 0..n {
            let line = rng.gen_range(0..1_000_000u64);
            let kind = if rng.gen_bool(0.5) { RequestKind::Write } else { RequestKind::Read };
            mem.enqueue(MemRequest::new(line, kind, 0)).unwrap();
        }
        let completions = mem.run_until_idle();
        assert_eq!(completions.len(), n);
        for c in &completions {
            assert!(c.finish_ps >= c.arrival_ps);
            assert!(c.latency_ps() >= cfg.timings.t_rcd);
        }
    });
}

/// The activation throttle never admits more activations per window than
/// its configured limit.
#[test]
fn throttle_never_exceeds_its_budget() {
    for_each_case("throttle_never_exceeds_its_budget", |rng| {
        let limit = rng.gen_range(1..50u64);
        let n = rng.gen_range(1..400u64) as usize;
        let window = 1_000_000u64; // 1 us
        let mut throttle = ActivationThrottle::with_limit(window, limit);
        let mut grants: Vec<u64> = Vec::new();
        let mut t = 0u64;
        for _ in 0..n {
            t = throttle.reserve(t);
            grants.push(t);
        }
        // Count activations granted inside any single window.
        for start in grants.iter().map(|g| (g / window) * window) {
            let in_window = grants.iter().filter(|&&g| g >= start && g < start + window).count() as u64;
            assert!(in_window <= limit, "window starting at {start} admitted {in_window} > {limit}");
        }
    });
}

/// A cache never reports more hits than accesses, and a second pass over
/// a working set no larger than the cache always hits.
#[test]
fn cache_hit_invariants() {
    for_each_case("cache_hit_invariants", |rng| {
        let mut cache = SetAssocCache::new(CacheConfig { capacity_bytes: 64 * 1024, associativity: 8, line_bytes: 64 });
        let n = rng.gen_range(1..256u64) as usize;
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range(0..512u64)).collect();
        for &l in &lines {
            cache.access(l, false);
        }
        let stats = cache.stats();
        assert!(stats.misses <= stats.accesses);
        // 512 distinct lines at most = 32 KiB < 64 KiB capacity: second pass hits.
        let mut unique: Vec<u64> = lines.clone();
        unique.sort_unstable();
        unique.dedup();
        for &l in &unique {
            assert!(cache.access(l, false).is_hit());
        }
    });
}

/// The thermal RC node always moves monotonically toward the stable
/// temperature and never overshoots it.
#[test]
fn thermal_node_never_overshoots() {
    for_each_case("thermal_node_never_overshoots", |rng| {
        let start = rng.gen_range(20.0..120.0);
        let stable = rng.gen_range(20.0..140.0);
        let steps = rng.gen_range(1..500u64);
        let mut node = ThermalNode::new(start, 50.0);
        let mut prev = start;
        for _ in 0..steps {
            let t = node.step(stable, 1.0);
            if stable >= start {
                assert!(t >= prev - 1e-9 && t <= stable + 1e-9);
            } else {
                assert!(t <= prev + 1e-9 && t >= stable - 1e-9);
            }
            prev = t;
        }
    });
}

/// Steady-state device temperatures increase monotonically with power.
#[test]
fn stable_temperature_is_monotone_in_power() {
    for_each_case("stable_temperature_is_monotone_in_power", |rng| {
        let model = IsolatedThermalModel::new(CoolingConfig::aohs_1_5(), ThermalLimits::paper_fbdimm());
        let p1 = rng.gen_range(0.0..10.0);
        let p2 = rng.gen_range(0.0..10.0);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        assert!(model.stable_amb_c(lo, 1.0) <= model.stable_amb_c(hi, 1.0));
        assert!(model.stable_dram_c(1.0, lo) <= model.stable_dram_c(1.0, hi));
    });
}

/// FBDIMM power models are monotone in throughput and never report less
/// than idle power.
#[test]
fn power_models_are_monotone() {
    for_each_case("power_models_are_monotone", |rng| {
        let power = FbdimmPowerModel::paper_defaults();
        let read = rng.gen_range(0.0..12.0);
        let write = rng.gen_range(0.0..6.0);
        let bypass = rng.gen_range(0.0..12.0);
        let dram = power.dram.power_watts(read, write);
        assert!(dram >= power.dram.power_watts(0.0, 0.0));
        assert!(power.dram.power_watts(read + 1.0, write) >= dram);
        let amb = power.amb.power_watts(bypass, read, false);
        assert!(amb >= power.amb.power_watts(0.0, 0.0, false));
        assert!(power.amb.power_watts(bypass, read + 0.5, false) >= amb);
    });
}

fn random_window(rng: &mut SmallRng, cfg: &FbdimmConfig) -> TrafficWindow {
    let mut dimms = Vec::new();
    for channel in 0..cfg.logical_channels {
        for dimm in 0..cfg.dimms_per_channel {
            if !rng.gen_bool(0.85) {
                continue; // occasionally drop a position
            }
            dimms.push(DimmTraffic {
                channel,
                dimm,
                local_gbps: rng.gen_range(0.0..4.0),
                bypass_gbps: rng.gen_range(0.0..8.0),
                read_fraction: rng.gen_range(0.0..1.0),
            });
        }
    }
    TrafficWindow { dimms, ..TrafficWindow::default() }
}

/// Power conservation: the per-position `scene_power` breakdowns sum to
/// exactly the subsystem power, for any traffic window and subsystem shape.
#[test]
fn scene_power_conserves_subsystem_power() {
    for_each_case("scene_power_conserves_subsystem_power", |rng| {
        let cfg = FbdimmConfig::ddr2_667_paper();
        let power = FbdimmPowerModel::paper_defaults();
        let window = random_window(rng, &cfg);
        let phys = rng.gen_range(1..4u64) as usize;
        let per_position = power.scene_power(&window, cfg.dimms_per_channel);
        assert_eq!(per_position.len(), window.dimms.len());
        let sum: f64 = per_position.iter().map(|p| p.total_watts()).sum();
        let subsystem = power.subsystem_power_watts(&window, cfg.dimms_per_channel, phys);
        assert!((sum * phys as f64 - subsystem).abs() < 1e-9, "scene sum {sum} x {phys} phys != subsystem {subsystem}");
    });
}

/// The hottest entry of `scene_power` is exactly what the legacy
/// `hottest_dimm_power` path reports.
#[test]
fn scene_power_argmax_matches_legacy_hottest_path() {
    for_each_case("scene_power_argmax_matches_legacy_hottest_path", |rng| {
        let cfg = FbdimmConfig::ddr2_667_paper();
        let power = FbdimmPowerModel::paper_defaults();
        let window = random_window(rng, &cfg);
        let legacy = power.hottest_dimm_power(&window, cfg.dimms_per_channel);
        let derived = power
            .scene_power(&window, cfg.dimms_per_channel)
            .into_iter()
            .max_by(|a, b| a.total_watts().partial_cmp(&b.total_watts()).unwrap())
            .unwrap_or_else(|| power.idle_dimm_power(false));
        assert!((legacy.total_watts() - derived.total_watts()).abs() < 1e-12);
        assert!((legacy.amb_watts - derived.amb_watts).abs() < 1e-12);
    });
}

/// The thermal emergency level never decreases as temperature rises.
#[test]
fn emergency_level_is_monotone_in_temperature() {
    for_each_case("emergency_level_is_monotone_in_temperature", |rng| {
        let thresholds = EmergencyThresholds::table_4_3(&ThermalLimits::paper_fbdimm());
        let t1 = rng.gen_range(60.0..120.0);
        let t2 = rng.gen_range(60.0..120.0);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        assert!(thresholds.amb_level(lo) <= thresholds.amb_level(hi));
    });
}

/// DTM-ACG never enables more cores at a hotter temperature than at a
/// cooler one (decisions are monotone), whether the observation arrives as
/// a synthesized scalar pair or as a full per-position field.
#[test]
fn acg_decisions_are_monotone() {
    for_each_case("acg_decisions_are_monotone", |rng| {
        let cpu = CpuConfig::paper_quad_core();
        let limits = ThermalLimits::paper_fbdimm();
        let t1 = rng.gen_range(90.0..112.0);
        let t2 = rng.gen_range(90.0..112.0);
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        // Fresh policies: threshold decisions are stateless.
        let mut cool = DtmAcg::new(cpu.clone(), limits);
        let mut hot = DtmAcg::new(cpu.clone(), limits);
        let cores_cool = cool.decide_temps(lo, 70.0, 1.0).active_cores;
        let cores_hot = hot.decide_temps(hi, 70.0, 1.0).active_cores;
        assert!(cores_hot <= cores_cool);
        // A full-field observation whose maximum equals the scalar pair
        // produces the same decision.
        let mem = FbdimmConfig::ddr2_667_paper();
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), limits);
        scene.set_uniform_temps_c(hi, 70.0);
        let mut from_field = DtmAcg::new(cpu, limits);
        assert_eq!(from_field.decide(&scene.observe(), 1.0).mode.active_cores, cores_hot);
    });
}

/// Coefficient-cached RC stepping (`decay_alpha` + `step_with_alpha`, the
/// window loop's hot path) matches the closed-form `exp()` integration of
/// Equation 3.5 within 1e-12 over randomized (tau, dt, power) sequences.
#[test]
fn cached_rc_coefficients_match_the_closed_form_exp_path() {
    for_each_case("cached_rc_coefficients_match_the_closed_form_exp_path", |rng| {
        let tau = 1.0 + rng.next_f64() * 200.0;
        let mut cached = ThermalNode::new(20.0 + rng.next_f64() * 60.0, tau);
        let mut reference = cached.temp_c();
        // A handful of segments with a fixed dt each: the cached path
        // computes alpha once per segment, the reference pays exp() per step.
        for _ in 0..rng.gen_range(1..6u64) {
            let dt = 10f64.powf(rng.next_f64() * 4.0 - 2.0); // 0.01 .. 100 s
            let alpha = ThermalNode::decay_alpha(tau, dt);
            for _ in 0..rng.gen_range(1..80u64) {
                let power_c = rng.next_f64() * 120.0; // stable temperature
                cached.step_with_alpha(power_c, alpha);
                reference += (power_c - reference) * (1.0 - (-dt / tau).exp());
                assert!(
                    (cached.temp_c() - reference).abs() < 1e-12,
                    "cached {} vs closed form {} (tau {tau}, dt {dt})",
                    cached.temp_c(),
                    reference
                );
            }
        }
    });
}

/// The whole-scene coefficient cache (three `exp()`s per distinct step
/// length instead of `2·positions+1` per window) is equivalent to stepping
/// every node with the closed form, including across step-length changes
/// that invalidate the cache.
#[test]
fn scene_coefficient_cache_matches_per_node_closed_form() {
    for_each_case("scene_coefficient_cache_matches_per_node_closed_form", |rng| {
        let mem = FbdimmConfig::ddr2_667_paper();
        let cooling = if rng.gen_bool(0.5) { CoolingConfig::aohs_1_5() } else { CoolingConfig::fdhs_1_0() };
        let mut scene = DimmThermalScene::isolated(&mem, cooling, ThermalLimits::paper_fbdimm());
        let r = cooling.resistances();
        let inlet = scene.ambient_params().system_inlet_c;
        let n = scene.len();
        let mut amb = vec![inlet; n];
        let mut dram = vec![inlet; n];
        let dts = [0.01, 0.1, 1.0, 7.5];
        for _ in 0..60 {
            let dt = dts[rng.gen_range(0..dts.len() as u64) as usize];
            let powers: Vec<FbdimmPowerBreakdown> = (0..n)
                .map(|_| FbdimmPowerBreakdown { amb_watts: rng.next_f64() * 8.0, dram_watts: rng.next_f64() * 3.0 })
                .collect();
            scene.step(&powers, 0.0, dt);
            for (i, p) in powers.iter().enumerate() {
                let stable_amb = inlet + p.amb_watts * r.psi_amb + p.dram_watts * r.psi_dram_amb;
                let stable_dram = inlet + p.amb_watts * r.psi_amb_dram + p.dram_watts * r.psi_dram;
                amb[i] += (stable_amb - amb[i]) * (1.0 - (-dt / r.tau_amb_s).exp());
                dram[i] += (stable_dram - dram[i]) * (1.0 - (-dt / r.tau_dram_s).exp());
            }
            for (pos, (a, d)) in scene.position_temps().iter().zip(amb.iter().zip(dram.iter())) {
                assert!((pos.amb_c - a).abs() < 1e-12, "AMB {} vs {}", pos.amb_c, a);
                assert!((pos.dram_c - d).abs() < 1e-12, "DRAM {} vs {}", pos.dram_c, d);
            }
        }
    });
}

/// Synthetic workload streams always stay within their declared
/// footprint and attribute at least one instruction per access.
#[test]
fn workload_streams_are_well_formed() {
    for_each_case("workload_streams_are_well_formed", |rng| {
        use dram_thermal::workloads::{spec2000, AccessStream};
        let app = spec2000::art();
        let mut stream = AccessStream::new(&app, rng.next_u64());
        let fp = stream.footprint_lines();
        for _ in 0..500 {
            let a = stream.next_access();
            assert!(a.line < fp);
            assert!(a.gap_instructions >= 1);
        }
    });
}
