//! Golden regression contract of the `ActuationPlan` refactor: the seven
//! pre-existing DTM policies (No-limit, DTM-TS, DTM-BW, DTM-ACG, DTM-CDVFS,
//! DTM-COMB and the Chapter 5 `PlatformPolicy`) must keep producing
//! **bit-identical** running-mode trajectories — every `f64` of every decided
//! mode compared by bit pattern, in the same style as
//! `tests/stack_regression.rs`.
//!
//! Each policy is driven over a long seeded temperature walk that sweeps the
//! whole emergency-level region (including `NaN` buffer temperatures for the
//! NaN-safe paths) and compared step by step against an independent mirror of
//! the pre-refactor decision logic, re-implemented here from the paper's raw
//! constants (Table 4.3 thresholds and running levels, the Section 4.2.3 PID
//! update, the DTM-TS hysteresis latch, the Table 5.1 platform levels).
//! Because the mirrors share no selector/PID code with the library, any
//! behavioral drift introduced by routing decisions through actuation plans
//! fails this test — a plan carrying only a global mode must reproduce
//! yesterday's policies exactly.

use dram_thermal::memtherm::dtm::policy::DtmPolicy;
use dram_thermal::memtherm::dtm::NoLimit;
use dram_thermal::prelude::*;
use dram_thermal::workloads::rng::SmallRng;
use platform_emu::{PlatformPolicy, PolicyKind, Server};

/// Bit-exact equality of two running modes, with a context label.
fn assert_mode_bits(step: usize, label: &str, got: &RunningMode, want: &RunningMode) {
    assert_eq!(got.active_cores, want.active_cores, "{label}: cores diverged at step {step}");
    assert_eq!(
        got.op.freq_ghz.to_bits(),
        want.op.freq_ghz.to_bits(),
        "{label}: frequency bits diverged at step {step}: {} vs {}",
        got.op.freq_ghz,
        want.op.freq_ghz
    );
    assert_eq!(got.op.voltage.to_bits(), want.op.voltage.to_bits(), "{label}: voltage bits diverged at step {step}");
    assert_eq!(
        got.bandwidth_cap.map(f64::to_bits),
        want.bandwidth_cap.map(f64::to_bits),
        "{label}: bandwidth-cap bits diverged at step {step}: {:?} vs {:?}",
        got.bandwidth_cap,
        want.bandwidth_cap
    );
}

/// The Table 4.3 emergency level (0-based) from raw boundary constants —
/// independent of `EmergencyThresholds`. `NaN` never reaches any level.
fn mirror_threshold_level(amb_c: f64, dram_c: f64) -> usize {
    let amb_bounds = [108.0, 109.0, 109.5, 110.0];
    let dram_bounds = [83.0, 84.0, 84.5, 85.0];
    let la = amb_bounds.iter().filter(|&&b| amb_c >= b).count();
    let ld = dram_bounds.iter().filter(|&&b| dram_c >= b).count();
    la.max(ld)
}

/// Mirror of the pre-refactor per-scheme running levels (Table 4.3).
fn mirror_scheme_mode(scheme: DtmScheme, level: usize, cpu: &CpuConfig) -> RunningMode {
    let full = RunningMode { active_cores: cpu.cores, op: cpu.dvfs.top(), bandwidth_cap: None };
    let off = RunningMode { active_cores: 0, op: cpu.dvfs.bottom(), bandwidth_cap: Some(0.0) };
    if level >= 4 {
        return off;
    }
    match scheme {
        DtmScheme::NoLimit | DtmScheme::Ts => full,
        DtmScheme::Bw => match level {
            0 => full,
            l => RunningMode { bandwidth_cap: Some([19.2e9, 12.8e9, 6.4e9][l - 1]), ..full },
        },
        DtmScheme::Acg => RunningMode { active_cores: cpu.cores - level, ..full },
        DtmScheme::Cdvfs => RunningMode { op: cpu.dvfs.point(level), ..full },
        DtmScheme::Comb => match level {
            0 => full,
            1 => RunningMode { active_cores: 3, op: cpu.dvfs.point(1), ..full },
            2 => RunningMode { active_cores: 2, op: cpu.dvfs.point(2), ..full },
            _ => RunningMode { active_cores: 2, op: cpu.dvfs.point(3), ..full },
        },
        _ => panic!("mirror only covers the pre-refactor schemes"),
    }
}

/// Mirror of the Section 4.2.3 PID controller (Equation 4.1 with conditional
/// integration and anti-windup), re-implemented from the paper constants.
struct MirrorPid {
    kc: f64,
    ki: f64,
    kd: f64,
    target_c: f64,
    enable_c: f64,
    integral: f64,
    prev_error: Option<f64>,
    last_output: f64,
}

impl MirrorPid {
    fn amb() -> Self {
        MirrorPid {
            kc: 10.4,
            ki: 180.24,
            kd: 0.001,
            target_c: 109.8,
            enable_c: 109.0,
            integral: 0.0,
            prev_error: None,
            last_output: 0.0,
        }
    }

    fn dram() -> Self {
        MirrorPid {
            kc: 12.4,
            ki: 155.12,
            kd: 0.001,
            target_c: 84.8,
            enable_c: 84.0,
            integral: 0.0,
            prev_error: None,
            last_output: 0.0,
        }
    }

    fn update(&mut self, measured_c: f64, dt_s: f64) -> f64 {
        let error = self.target_c - measured_c;
        let derivative = match self.prev_error {
            Some(prev) if dt_s > 0.0 => (error - prev) / dt_s,
            _ => 0.0,
        };
        self.prev_error = Some(error);
        let saturated_high = self.last_output >= 150.0 && error > 0.0;
        let saturated_low = self.last_output <= -150.0 && error < 0.0;
        if measured_c < self.enable_c {
            self.integral = 0.0;
        } else if !saturated_high && !saturated_low && dt_s > 0.0 {
            self.integral += error * dt_s;
        }
        let raw = self.kc * (error + self.ki * self.integral + self.kd * derivative);
        self.last_output = raw.clamp(-150.0, 150.0);
        self.last_output
    }

    fn level(&mut self, measured_c: f64, dt_s: f64) -> usize {
        let out = self.update(measured_c, dt_s);
        if out >= 20.0 {
            return 0;
        }
        (((20.0 - out) / 10.0).ceil() as usize).min(4)
    }
}

/// Mirror of the PID-driven level selection: TDP forces the top level (while
/// still updating the controllers); `NaN` devices contribute level 0 and
/// never touch their controller's integral state.
struct MirrorPidSelector {
    amb: MirrorPid,
    dram: MirrorPid,
}

impl MirrorPidSelector {
    fn new() -> Self {
        MirrorPidSelector { amb: MirrorPid::amb(), dram: MirrorPid::dram() }
    }

    fn select(&mut self, amb_c: f64, dram_c: f64, dt_s: f64) -> usize {
        if amb_c >= 110.0 || dram_c >= 85.0 {
            if !amb_c.is_nan() {
                self.amb.update(amb_c, dt_s);
            }
            if !dram_c.is_nan() {
                self.dram.update(dram_c, dt_s);
            }
            return 4;
        }
        let la = if amb_c.is_nan() { 0 } else { self.amb.level(amb_c, dt_s) };
        let ld = if dram_c.is_nan() { 0 } else { self.dram.level(dram_c, dt_s) };
        la.max(ld)
    }
}

/// The seeded temperature walk every policy is pinned against: sweeps both
/// devices through their whole emergency region, occasionally reports a
/// `NaN` buffer (bufferless rank-pair scenes), and alternates DTM interval
/// lengths.
fn walk(seed: u64, with_nan: bool) -> Vec<(f64, f64, f64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..2_000)
        .map(|_| {
            let amb = if with_nan && rng.gen_bool(0.1) { f64::NAN } else { 95.0 + 17.0 * rng.next_f64() };
            let dram = 68.0 + 19.0 * rng.next_f64();
            let dt = [0.01, 0.01, 0.01, 1.0][rng.gen_range(0..4u64) as usize];
            (amb, dram, dt)
        })
        .collect()
}

#[test]
fn threshold_policies_are_bit_identical_to_the_table_4_3_mirror() {
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();
    let mut policies: Vec<Box<dyn DtmPolicy>> = vec![
        Box::new(NoLimit::new(&cpu)),
        Box::new(DtmBw::new(cpu.clone(), limits)),
        Box::new(DtmAcg::new(cpu.clone(), limits)),
        Box::new(DtmCdvfs::new(cpu.clone(), limits)),
        Box::new(DtmComb::new(cpu.clone(), limits)),
    ];
    for policy in &mut policies {
        let scheme = policy.scheme();
        for (step, &(amb, dram, dt)) in walk(0x90_1d_e4 + scheme as u64, true).iter().enumerate() {
            let got = policy.decide_temps(amb, dram, dt);
            let level = if scheme == DtmScheme::NoLimit { 0 } else { mirror_threshold_level(amb, dram) };
            let want = mirror_scheme_mode(scheme, level, &cpu);
            assert_mode_bits(step, &policy.name(), &got, &want);
        }
    }
}

#[test]
fn dtm_ts_latch_is_bit_identical_to_the_hysteresis_mirror() {
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();
    let mut ts = DtmTs::new(cpu.clone(), limits);
    let mut shut = false;
    for (step, &(amb, dram, dt)) in walk(0x75_1a7c4, true).iter().enumerate() {
        let got = ts.decide_temps(amb, dram, dt);
        if amb >= 110.0 || dram >= 85.0 {
            shut = true;
        } else if shut {
            let released = |t: f64, trp: f64| t.is_nan() || t <= trp;
            if released(amb, 109.0) && released(dram, 84.0) {
                shut = false;
            }
        }
        let want = mirror_scheme_mode(DtmScheme::Ts, if shut { 4 } else { 0 }, &cpu);
        assert_mode_bits(step, "DTM-TS", &got, &want);
    }
}

#[test]
fn pid_policies_are_bit_identical_to_the_equation_4_1_mirror() {
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();
    let mut cases: Vec<(Box<dyn DtmPolicy>, DtmScheme)> = vec![
        (Box::new(DtmBw::with_pid(cpu.clone(), limits)), DtmScheme::Bw),
        (Box::new(DtmAcg::with_pid(cpu.clone(), limits)), DtmScheme::Acg),
        (Box::new(DtmCdvfs::with_pid(cpu.clone(), limits)), DtmScheme::Cdvfs),
        (Box::new(DtmComb::with_pid(cpu.clone(), limits)), DtmScheme::Comb),
    ];
    for (policy, scheme) in &mut cases {
        assert!(policy.uses_pid(), "{}", policy.name());
        let mut mirror = MirrorPidSelector::new();
        for (step, &(amb, dram, dt)) in walk(0x91d_0000 ^ *scheme as u64, true).iter().enumerate() {
            let got = policy.decide_temps(amb, dram, dt);
            let want = mirror_scheme_mode(*scheme, mirror.select(amb, dram, dt), &cpu);
            assert_mode_bits(step, &policy.name(), &got, &want);
        }
    }
}

#[test]
fn legacy_policies_emit_scalar_plans_even_over_a_resolved_field() {
    // The plan contract: the seven pre-existing policies never attach
    // per-channel service fractions or steering weights — their plans are
    // scalar wrappers of exactly the mode the scalar path reports, even
    // when the observation carries the full per-position field.
    let cpu = CpuConfig::paper_quad_core();
    let limits = ThermalLimits::paper_fbdimm();
    let mem = FbdimmConfig::ddr2_667_paper();
    let mut policies: Vec<Box<dyn DtmPolicy>> = vec![
        Box::new(NoLimit::new(&cpu)),
        Box::new(DtmTs::new(cpu.clone(), limits)),
        Box::new(DtmBw::new(cpu.clone(), limits)),
        Box::new(DtmAcg::with_pid(cpu.clone(), limits)),
        Box::new(DtmCdvfs::new(cpu.clone(), limits)),
        Box::new(DtmComb::new(cpu.clone(), limits)),
        Box::new(PlatformPolicy::new(PolicyKind::Comb, Server::sr1500al()).with_ideal_sensor()),
    ];
    for temps in [(100.0, 70.0), (108.6, 83.2), (109.8, 84.9), (111.0, 86.0), (95.0, 70.0)] {
        let mut scene = DimmThermalScene::isolated(&mem, CoolingConfig::aohs_1_5(), limits);
        scene.set_uniform_temps_c(temps.0, temps.1);
        let obs = scene.observe();
        for policy in &mut policies {
            let plan = policy.decide(&obs, 0.01);
            assert!(plan.is_scalar(), "{} attached spatial actuation", policy.name());
            assert!(plan.channel_service.is_empty() && plan.steering.is_empty());
        }
    }
}

#[test]
fn platform_policies_are_bit_identical_to_the_table_5_1_mirror() {
    // The Chapter 5 software policies on the SR1500AL with an ideal sensor:
    // levels from the server's emergency bounds, 5/4/3 GB/s caps, 4/3/2/2
    // online cores, the Xeon cpufreq ladder, and the level-3 fail-safe cap.
    for kind in [PolicyKind::Bw, PolicyKind::Acg, PolicyKind::Cdvfs, PolicyKind::Comb] {
        let server = Server::sr1500al();
        let cpu = server.cpu.clone();
        let bounds = server.emergency_bounds_c;
        let bw_limits = server.bw_limits_gbps;
        let failsafe = server.failsafe_cap_gbps;
        let mut policy = PlatformPolicy::new(kind, server).with_ideal_sensor();
        let mut rng = SmallRng::seed_from_u64(0x5_1500 + kind.scheme() as u64);
        for step in 0..2_000 {
            let amb = 78.0 + 20.0 * rng.next_f64();
            let got = policy.decide_temps(amb, 0.0, 1.0);
            let level = bounds.iter().filter(|&&b| amb >= b).count();
            let full = RunningMode { active_cores: cpu.cores, op: cpu.dvfs.top(), bandwidth_cap: None };
            let mut want = full;
            match kind {
                PolicyKind::NoLimit => {}
                PolicyKind::Bw => {
                    if level >= 1 {
                        want.bandwidth_cap = Some(bw_limits[(level - 1).min(2)] * 1e9);
                    }
                }
                PolicyKind::Acg => {
                    want.active_cores = [4, 3, 2, 2][level.min(3)];
                    if level >= 3 {
                        want.bandwidth_cap = Some(failsafe * 1e9);
                    }
                }
                PolicyKind::Cdvfs => {
                    want.op = cpu.dvfs.point(level.min(3));
                    if level >= 3 {
                        want.bandwidth_cap = Some(failsafe * 1e9);
                    }
                }
                PolicyKind::Comb => {
                    want.active_cores = [4, 3, 2, 2][level.min(3)];
                    want.op = cpu.dvfs.point(level.min(3));
                    if level >= 3 {
                        want.bandwidth_cap = Some(failsafe * 1e9);
                    }
                }
            }
            assert_mode_bits(step, &policy.name(), &got, &want);
        }
    }
}
