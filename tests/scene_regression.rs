//! Regression contract of the channel-resolved thermal scene: the refactor
//! must not change what the legacy hottest-DIMM pipeline computed, while
//! adding the per-position resolution the legacy path threw away.

use dram_thermal::fbdimm::{DimmTraffic, FbdimmConfig, TrafficWindow};
use dram_thermal::prelude::*;

/// A traffic pattern whose hottest DIMM is the *last* of channel 0 — all
/// local traffic concentrated there, so bypass load on the closer DIMMs is
/// what the AMB model sees. Exercises the `is_last` AMB coefficient and a
/// hottest position that is not the default dimm 0.
fn last_dimm_hottest_window(mem: &FbdimmConfig) -> TrafficWindow {
    let last = mem.dimms_per_channel - 1;
    let dimms: Vec<DimmTraffic> = (0..mem.logical_channels)
        .flat_map(|c| (0..mem.dimms_per_channel).map(move |d| (c, d)))
        .map(|(channel, dimm)| {
            if channel == 0 && dimm == last {
                // The target DIMM serves everything locally.
                DimmTraffic { channel, dimm, local_gbps: 4.0, bypass_gbps: 0.0, read_fraction: 0.7 }
            } else if channel == 0 {
                // DIMMs in front of it forward the traffic.
                DimmTraffic { channel, dimm, local_gbps: 0.0, bypass_gbps: 4.0, read_fraction: 0.0 }
            } else {
                DimmTraffic { channel, dimm, local_gbps: 0.2, bypass_gbps: 0.1, read_fraction: 0.6 }
            }
        })
        .collect();
    TrafficWindow { dimms, ..TrafficWindow::default() }
}

#[test]
fn scene_power_sums_to_subsystem_power_for_last_dimm_traffic() {
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let window = last_dimm_hottest_window(&mem);
    let per_position = power.scene_power(&window, mem.dimms_per_channel);
    assert_eq!(per_position.len(), mem.dimm_positions());
    let sum: f64 = per_position.iter().map(|p| p.total_watts()).sum();
    let subsystem = power.subsystem_power_watts(&window, mem.dimms_per_channel, mem.phys_per_logical);
    assert!((sum * mem.phys_per_logical as f64 - subsystem).abs() < 1e-9);
}

#[test]
fn scene_hottest_position_matches_legacy_hottest_dimm_power() {
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let window = last_dimm_hottest_window(&mem);

    let legacy = power.hottest_dimm_power(&window, mem.dimms_per_channel);
    let per_position = power.scene_power(&window, mem.dimms_per_channel);
    let (hottest_idx, hottest) = per_position
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| a.total_watts().partial_cmp(&b.total_watts()).unwrap())
        .unwrap();
    assert!((hottest.total_watts() - legacy.total_watts()).abs() < 1e-12);
    // The arg-max finds the *last* DIMM of channel 0 — something the legacy
    // "dimm 0 is hottest" intuition would get wrong for this pattern.
    let d = &window.dimms[hottest_idx];
    assert_eq!((d.channel, d.dimm), (0, mem.dimms_per_channel - 1));
}

#[test]
fn scene_trajectory_tracks_legacy_single_model_within_a_tenth_of_a_degree() {
    let mem = FbdimmConfig::ddr2_667_paper();
    let cooling = CoolingConfig::aohs_1_5();
    let limits = ThermalLimits::paper_fbdimm();
    let power = FbdimmPowerModel::paper_defaults();
    let window = last_dimm_hottest_window(&mem);

    // Legacy path: feed the hottest DIMM's power into one AMB/DRAM pair.
    let hottest = power.hottest_dimm_power(&window, mem.dimms_per_channel);
    let mut legacy = IsolatedThermalModel::new(cooling, limits);

    // Scene path: every position integrates its own power; the hottest is
    // derived by arg-max at observation time.
    let mut scene = DimmThermalScene::isolated(&mem, cooling, limits);
    let powers = power.scene_power(&window, mem.dimms_per_channel);

    for step in 0..2_000 {
        legacy.step(hottest.amb_watts, hottest.dram_watts, 0.5);
        scene.step(&powers, 0.0, 0.5);
        let obs = scene.observe();
        assert!(
            (obs.max_amb_c - legacy.amb_temp_c()).abs() < 0.1,
            "AMB diverged at step {step}: scene {:.3} vs legacy {:.3}",
            obs.max_amb_c,
            legacy.amb_temp_c()
        );
        assert!(
            (obs.max_dram_c - legacy.dram_temp_c()).abs() < 0.1,
            "DRAM diverged at step {step}: scene {:.3} vs legacy {:.3}",
            obs.max_dram_c,
            legacy.dram_temp_c()
        );
    }
    // And the derived hottest is the last DIMM of channel 0.
    assert_eq!(scene.observe().hottest_amb, Some((0, mem.dimms_per_channel - 1)));
}

#[test]
fn integrated_scene_tracks_legacy_integrated_model() {
    let mem = FbdimmConfig::ddr2_667_paper();
    let cooling = CoolingConfig::fdhs_1_0();
    let limits = ThermalLimits::paper_fbdimm();
    let power = FbdimmPowerModel::paper_defaults();
    let window = last_dimm_hottest_window(&mem);

    let hottest = power.hottest_dimm_power(&window, mem.dimms_per_channel);
    let mut legacy = IntegratedThermalModel::new(cooling, limits);
    let mut scene = DimmThermalScene::integrated(&mem, cooling, limits);
    let powers = power.scene_power(&window, mem.dimms_per_channel);

    for _ in 0..1_000 {
        legacy.step(hottest.amb_watts, hottest.dram_watts, 5.0, 1.0);
        scene.step(&powers, 5.0, 1.0);
        let obs = scene.observe();
        assert!((obs.max_amb_c - legacy.amb_temp_c()).abs() < 0.1);
        assert!((obs.max_dram_c - legacy.dram_temp_c()).abs() < 0.1);
        assert!((scene.ambient_c() - legacy.ambient_c()).abs() < 0.01, "shared ambient must match");
    }
}

#[test]
fn memspot_results_carry_the_resolved_field_end_to_end() {
    // Full pipeline: a MEMSpot run's field maxima equal its reported maxima
    // and every non-hottest position stays at or below them.
    let mut spot = MemSpot::new(MemSpotConfig::tiny(CoolingConfig::aohs_1_5()));
    let mut policy = DtmBw::new(CpuConfig::paper_quad_core(), ThermalLimits::paper_fbdimm());
    let r = spot.run(&mixes::w1(), &mut policy);
    assert_eq!(r.position_peaks.len(), 8);
    for p in &r.position_peaks {
        assert!(p.max_amb_c <= r.max_amb_c + 1e-9);
        assert!(p.max_dram_c <= r.max_dram_c + 1e-9);
    }
    let hottest = r.hottest_position().unwrap();
    assert!((hottest.max_amb_c - r.max_amb_c).abs() < 1e-9);
}
