//! Integration tests of the Chapter 5 server-platform emulation.

use dram_thermal::prelude::*;
use dram_thermal::workloads::spec2000;

#[test]
fn sr1500al_case_study_reproduces_the_headline_findings() {
    let mut exp = PlatformExperiment::with_scale(Server::sr1500al(), 1, 1.0);
    let mix = mixes::w1();

    let bw = exp.run_policy(&mix, PolicyKind::Bw);
    let acg = exp.run_policy(&mix, PolicyKind::Acg);
    let cdvfs = exp.run_policy(&mix, PolicyKind::Cdvfs);
    let comb = exp.run_policy(&mix, PolicyKind::Comb);

    for run in [&bw, &acg, &cdvfs, &comb] {
        assert!(run.measurement.completed, "{} did not complete", run.measurement.policy);
        assert!(
            run.measurement.max_amb_c < exp.server().amb_tdp_c + 1.0,
            "{} exceeded the TDP: {:.1}",
            run.measurement.policy,
            run.measurement.max_amb_c
        );
    }

    // The proposed policies do not lose to bandwidth throttling.
    assert!(acg.measurement.running_time_s <= bw.measurement.running_time_s * 1.03);
    assert!(cdvfs.measurement.running_time_s <= bw.measurement.running_time_s * 1.03);

    // DTM-CDVFS and DTM-COMB reduce processor power and the memory inlet
    // temperature relative to DTM-BW (Figures 5.9 / 5.10).
    assert!(cdvfs.measurement.cpu_power_w < bw.measurement.cpu_power_w);
    assert!(comb.measurement.cpu_power_w < bw.measurement.cpu_power_w);
    // The inlet difference is ~1 degC in the paper; allow sampling noise here.
    assert!(cdvfs.measurement.memory_inlet_c <= bw.measurement.memory_inlet_c + 0.75);

    // Figure 5.8 reports an L2-miss reduction for DTM-ACG. How much of it
    // appears here depends on how long the policy actually keeps cores gated
    // and on the rotation-averaged characterization of gated modes (see
    // DESIGN.md), so the check only guards against a substantial inflation.
    assert!(acg.measurement.llc_misses <= bw.measurement.llc_misses * 1.15);
}

#[test]
fn ambient_gap_matters_more_than_absolute_ambient() {
    // Section 5.4.5: results at 26 degC ambient with a 90 degC TDP resemble
    // those at 36 degC with a 100 degC TDP because the gap is what counts.
    let hot_box = Server::sr1500al();
    let room = Server::sr1500al().with_ambient_c(26.0).with_amb_tdp(90.0);

    let mut exp_hot = PlatformExperiment::with_scale(hot_box, 1, 0.8);
    let mut exp_room = PlatformExperiment::with_scale(room, 1, 0.8);
    let mix = mixes::w2();

    let hot_bw = exp_hot.run_policy(&mix, PolicyKind::Bw).measurement;
    let hot_acg = exp_hot.run_policy(&mix, PolicyKind::Acg).measurement;
    let room_bw = exp_room.run_policy(&mix, PolicyKind::Bw).measurement;
    let room_acg = exp_room.run_policy(&mix, PolicyKind::Acg).measurement;

    let hot_gain = hot_bw.running_time_s / hot_acg.running_time_s.max(1e-9);
    let room_gain = room_bw.running_time_s / room_acg.running_time_s.max(1e-9);
    assert!((hot_gain - room_gain).abs() < 0.25, "ACG gain differs too much: hot {hot_gain:.2} vs room {room_gain:.2}");
}

#[test]
fn homogeneous_observation_separates_memory_intensity_classes() {
    let mut exp = PlatformExperiment::with_scale(Server::pe1950(), 1, 0.8);
    let swim = exp.homogeneous_average_amb(&spec2000::swim());
    let mgrid = exp.homogeneous_average_amb(&spec2000::mgrid());
    let vpr = exp.homogeneous_average_amb(&spec2000::vpr());
    let apsi = exp.homogeneous_average_amb(&spec2000::apsi());

    // High-bandwidth programs run the AMB hotter than moderate ones.
    assert!(swim > vpr && mgrid > vpr, "swim {swim:.1} / mgrid {mgrid:.1} vs vpr {vpr:.1}");
    assert!(swim > apsi);
    // Everything stays in a physically sensible band.
    for t in [swim, mgrid, vpr, apsi] {
        assert!(t > 26.0 && t < 110.0, "implausible AMB average {t:.1}");
    }
}
