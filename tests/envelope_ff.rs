//! Property suite for the contraction-certified envelope fast-forward tier
//! (`memtherm::sim::batch`): under randomized {stack, cooling, mix, policy,
//! DTM cadence} combinations, envelope execution must stay within the
//! claimed relative 1e-9 of literal stepping on every reported quantity,
//! conserve the simulated window count exactly, and fall back to literal
//! stepping — without losing accuracy — the moment a trajectory leaves its
//! certified band. A dedicated sliding-mode DTM-BW cell pins the exact
//! decision replay at the paper's native 10 ms cadence.

use std::sync::Arc;

use dram_thermal::memtherm::dtm::{DtmAcg, DtmBw, DtmCdvfs, DtmTs, NoLimit};
use dram_thermal::prelude::*;

/// Tiny deterministic PRNG (xorshift64*) so the "random" cell pool is
/// reproducible from a literal seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

fn base_config(cooling: CoolingConfig) -> MemSpotConfig {
    MemSpotConfig {
        copies_per_app: 4,
        instruction_scale: 0.6,
        characterization_budget: 8_000,
        max_sim_time_s: 3_000.0,
        ..MemSpotConfig::paper(cooling)
    }
}

/// The envelope-eligible (pure, memoryless) policy pool. DTM-TS is added
/// separately where coexistence with ineligible cells is under test.
fn pure_policy(kind: u64, cpu: &CpuConfig, limits: ThermalLimits) -> Box<dyn DtmPolicy> {
    match kind % 4 {
        0 => Box::new(NoLimit::new(cpu)),
        1 => Box::new(DtmAcg::new(cpu.clone(), limits)),
        2 => Box::new(DtmCdvfs::new(cpu.clone(), limits)),
        _ => Box::new(DtmBw::new(cpu.clone(), limits)),
    }
}

fn assert_abs(a: f64, b: f64, tol: f64, what: &str) {
    if a.is_nan() && b.is_nan() {
        return;
    }
    assert!((a - b).abs() <= tol, "{what}: {a} vs {b} (abs err {})", (a - b).abs());
}

fn assert_rel(a: f64, b: f64, what: &str) {
    if a.is_nan() && b.is_nan() {
        return;
    }
    let denom = a.abs().max(b.abs()).max(1e-300);
    assert!(((a - b) / denom).abs() <= 1e-9, "{what}: {a} vs {b} (rel err {})", ((a - b) / denom).abs());
}

/// Field-by-field comparison of an envelope-executed result against its
/// literal reference at the envelope tier's claimed bound: every scalar
/// within relative 1e-9 (temperatures and residency fractions, whose
/// natural scale is O(1)–O(100), within 1e-9 of that scale absolute).
fn assert_envelope_tolerance(ff: &MemSpotResult, lit: &MemSpotResult, label: &str) {
    assert_eq!(ff.workload, lit.workload, "{label}: workload");
    assert_eq!(ff.policy, lit.policy, "{label}: policy");
    assert_eq!(ff.completed, lit.completed, "{label}: completion");
    assert_rel(ff.running_time_s, lit.running_time_s, &format!("{label}: running_time_s"));
    assert_rel(ff.total_instructions, lit.total_instructions, &format!("{label}: total_instructions"));
    assert_rel(ff.total_memory_bytes, lit.total_memory_bytes, &format!("{label}: total_memory_bytes"));
    assert_rel(ff.total_l2_misses, lit.total_l2_misses, &format!("{label}: total_l2_misses"));
    assert_rel(ff.memory_energy_j, lit.memory_energy_j, &format!("{label}: memory_energy_j"));
    assert_rel(ff.cpu_energy_j, lit.cpu_energy_j, &format!("{label}: cpu_energy_j"));
    assert_rel(ff.avg_memory_power_w, lit.avg_memory_power_w, &format!("{label}: avg_memory_power_w"));
    assert_rel(ff.avg_cpu_power_w, lit.avg_cpu_power_w, &format!("{label}: avg_cpu_power_w"));
    assert_rel(ff.avg_ambient_c, lit.avg_ambient_c, &format!("{label}: avg_ambient_c"));
    assert_rel(ff.max_amb_c, lit.max_amb_c, &format!("{label}: max_amb_c"));
    assert_rel(ff.max_dram_c, lit.max_dram_c, &format!("{label}: max_dram_c"));
    assert_rel(ff.migrated_traffic_bytes, lit.migrated_traffic_bytes, &format!("{label}: migrated_traffic_bytes"));
    assert_eq!(
        ff.mode_residency.keys().collect::<Vec<_>>(),
        lit.mode_residency.keys().collect::<Vec<_>>(),
        "{label}: residency modes"
    );
    for (mode, frac) in &ff.mode_residency {
        assert_abs(*frac, lit.mode_residency[mode], 1e-9, &format!("{label}: residency[{mode}]"));
    }
    assert_eq!(ff.position_peaks.len(), lit.position_peaks.len(), "{label}: peak count");
    for (a, b) in ff.position_peaks.iter().zip(&lit.position_peaks) {
        assert_eq!((a.channel, a.dimm), (b.channel, b.dimm), "{label}: peak position");
        assert_rel(a.max_amb_c, b.max_amb_c, &format!("{label}: peak amb ({},{})", a.channel, a.dimm));
        assert_rel(a.max_dram_c, b.max_dram_c, &format!("{label}: peak dram ({},{})", a.channel, a.dimm));
        for (l, (x, y)) in a.layers_c.iter().zip(&b.layers_c).enumerate() {
            assert_rel(*x, *y, &format!("{label}: peak layer {l} ({},{})", a.channel, a.dimm));
        }
    }
    for (ch, (a, b)) in ff.channel_throttle_residency.iter().zip(&lit.channel_throttle_residency).enumerate() {
        assert_abs(*a, *b, 1e-9, &format!("{label}: throttle residency ch{ch}"));
    }
}

#[test]
fn envelope_execution_matches_literal_within_1e9_across_random_cells() {
    // Seeded sweep over {stack, cooling, mix, pure policy, cadence}: the
    // envelope tier replays decisions literally and certifies every
    // closed-form jump against the policy over the exact traversed band,
    // so every reported quantity must stay within relative 1e-9 of literal
    // stepping, the window count must be conserved exactly — and across
    // the pool the tier must actually engage (envelope_cycles > 0), or the
    // suite would be vacuous.
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let store = Arc::new(CharStore::new());
    let stacks = [StackKind::Fbdimm, StackKind::RankPair, StackKind::stacked4()];
    let coolings = [CoolingConfig::aohs_1_5(), CoolingConfig::fdhs_1_0()];
    let mixes_pool = [mixes::w1(), mixes::w6()];
    // The paper's native cadence plus two relay-style cadences: at 10 ms
    // threshold orbits slip, at the slower cadences frozen-plan stretches
    // dominate — both envelope entry paths get exercised.
    let dts = [0.010, 0.100, 1.0];

    let build_cells = |rng: &mut Rng| {
        (0..8u64)
            .map(|i| {
                let stack = *rng.pick(&stacks);
                let mut cfg = base_config(*rng.pick(&coolings)).with_stack(stack);
                cfg.window_s = *rng.pick(&dts);
                cfg.dtm_interval_s = cfg.window_s;
                let mix = rng.pick(&mixes_pool).clone();
                // One latched (envelope-ineligible) DTM-TS cell rides along:
                // ineligible members of a lane must coexist with bursting
                // neighbors without perturbing them.
                let policy: Box<dyn DtmPolicy> = if i == 5 {
                    Box::new(DtmTs::new(cpu.clone(), cfg.limits))
                } else {
                    pure_policy(rng.next(), &cpu, cfg.limits)
                };
                BatchCell::new(&cpu, &mem, cfg, mix, policy, Arc::clone(&store)).with_rotation_threads(1)
            })
            .collect::<Vec<_>>()
    };

    let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
    let mut rng = Rng(0x0E17_BA5E_D5EE_D001);
    let literal = engine.run(build_cells(&mut rng), &BatchOptions::literal());
    let mut rng = Rng(0x0E17_BA5E_D5EE_D001);
    let envelope = engine.run(build_cells(&mut rng), &BatchOptions::default());

    assert_eq!(literal.len(), envelope.len());
    assert!(literal.iter().all(|(_, s)| s.fast_forwarded_windows == 0 && s.envelope_cycles == 0));
    let total_envelope: u64 = envelope.iter().map(|(_, s)| s.envelope_cycles).sum();
    assert!(total_envelope > 0, "no cell engaged the envelope tier; the property suite is vacuous");
    for (i, ((ff, fs), (lit, ls))) in envelope.iter().zip(&literal).enumerate() {
        assert_eq!(
            fs.stepped_windows + fs.fast_forwarded_windows,
            ls.stepped_windows,
            "cell {i} ({}/{}) window count drifted",
            ff.workload,
            ff.policy
        );
        assert_envelope_tolerance(ff, lit, &format!("cell {i}: {}/{}", ff.workload, ff.policy));
    }
}

#[test]
fn a_drifting_trajectory_falls_back_to_literal_without_losing_accuracy() {
    // A deliberately non-confined cell: the ambient override is pushed so
    // close to the TDP shutdown threshold that the orbit escalates to a
    // full shutdown, freezes long enough while cooling for the envelope to
    // engage, and then re-heats straight through the certified band's upper
    // edge. The drift audit must catch the violation, hand the cell back to
    // literal lane stepping (envelope_fallbacks > 0), and the final result
    // must still satisfy the full envelope bound — fallback is a
    // performance event, never an accuracy event.
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let store = Arc::new(CharStore::new());

    let mut cfg = MemSpotConfig {
        copies_per_app: 8,
        instruction_scale: 1.0,
        characterization_budget: 10_000,
        max_sim_time_s: 2_000.0,
        ..MemSpotConfig::paper(CoolingConfig::fdhs_1_0())
    };
    cfg.ambient_override_c = Some(85.0);
    let build = || {
        vec![BatchCell::new(
            &cpu,
            &mem,
            cfg,
            mixes::w6(),
            Box::new(DtmAcg::new(cpu.clone(), cfg.limits)),
            Arc::clone(&store),
        )
        .with_rotation_threads(1)]
    };

    let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
    let literal = engine.run(build(), &BatchOptions::literal());
    let envelope = engine.run(build(), &BatchOptions::default());
    let (lit, ls) = &literal[0];
    let (ff, fs) = &envelope[0];
    assert!(
        fs.envelope_fallbacks > 0,
        "the drifting cell never violated a band (fallbacks {}, cycles {}, stepped {})",
        fs.envelope_fallbacks,
        fs.envelope_cycles,
        fs.stepped_windows
    );
    assert_eq!(fs.stepped_windows + fs.fast_forwarded_windows, ls.stepped_windows, "window count drifted");
    assert_envelope_tolerance(ff, lit, "drifting DTM-ACG cell");
}

#[test]
fn sliding_mode_bw_chatter_replays_exactly_at_paper_cadence() {
    // The worst case of the paper grid: DTM-BW at the native 10 ms cadence
    // pins itself to its throttle threshold in a sliding-mode orbit whose
    // plan flips every couple of windows — no frozen-plan band and no
    // limit-cycle certificate can hold, so only the exact decision replay
    // (pure decision keys + dominance certificate + plan-run-length
    // accounting) can carry the cell analytically. It must engage without
    // a single drift fallback, absorb the bulk of the run, conserve the
    // window count bit for bit, and stay within the tier's 1e-9 claim on
    // every reported scalar.
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let store = Arc::new(CharStore::new());
    let mut cfg = MemSpotConfig {
        copies_per_app: 24,
        instruction_scale: 1.0,
        characterization_budget: 15_000,
        ..MemSpotConfig::paper(CoolingConfig::fdhs_1_0())
    };
    cfg.window_s = 0.010;
    cfg.dtm_interval_s = 0.010;
    let build = || {
        vec![BatchCell::new(
            &cpu,
            &mem,
            cfg,
            mixes::w5(),
            Box::new(DtmBw::new(cpu.clone(), cfg.limits)),
            Arc::clone(&store),
        )
        .with_rotation_threads(1)]
    };

    let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
    let literal = engine.run(build(), &BatchOptions::literal());
    let envelope = engine.run(build(), &BatchOptions::default());
    let (lit, ls) = &literal[0];
    let (ff, fs) = &envelope[0];
    assert!(
        fs.envelope_cycles > 0,
        "the sliding-mode orbit never engaged the envelope tier (stepped {})",
        fs.stepped_windows
    );
    assert_eq!(fs.envelope_fallbacks, 0, "the decision replay drifted out of its certified band");
    assert_eq!(fs.stepped_windows + fs.fast_forwarded_windows, ls.stepped_windows, "window count drifted");
    assert!(
        fs.fast_forwarded_windows > ls.stepped_windows / 2,
        "the replay absorbed only {} of {} windows — the chatter fell to literal stepping",
        fs.fast_forwarded_windows,
        ls.stepped_windows
    );
    assert_envelope_tolerance(ff, lit, "sliding-mode DTM-BW cell");
}

#[test]
fn a_refuted_contraction_certificate_falls_back_with_exact_window_conservation() {
    // Mid-burst certificate refutation: the ambient override parks the
    // sliding-mode DTM-BW orbit so close to the escalation boundary that
    // the confinement band certified at burst entry is violated while the
    // replay is underway. The drift audit must refute the certificate and
    // hand the cell back to literal lane stepping (envelope_fallbacks > 0)
    // with nothing lost: the window count stays exactly conserved and
    // every reported scalar still meets the full 1e-9 envelope bound —
    // refutation is a performance event, never an accuracy event.
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let store = Arc::new(CharStore::new());
    let mut cfg = MemSpotConfig {
        copies_per_app: 8,
        instruction_scale: 1.0,
        characterization_budget: 10_000,
        max_sim_time_s: 2_000.0,
        ..MemSpotConfig::paper(CoolingConfig::fdhs_1_0())
    };
    cfg.window_s = 0.010;
    cfg.dtm_interval_s = 0.010;
    cfg.ambient_override_c = Some(85.0);
    let build = || {
        vec![BatchCell::new(
            &cpu,
            &mem,
            cfg,
            mixes::w6(),
            Box::new(DtmBw::new(cpu.clone(), cfg.limits)),
            Arc::clone(&store),
        )
        .with_rotation_threads(1)]
    };

    let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
    let literal = engine.run(build(), &BatchOptions::literal());
    let envelope = engine.run(build(), &BatchOptions::default());
    let (lit, ls) = &literal[0];
    let (ff, fs) = &envelope[0];
    assert!(
        fs.envelope_fallbacks > 0,
        "no certificate was refuted mid-burst (fallbacks {}, cycles {}, stepped {})",
        fs.envelope_fallbacks,
        fs.envelope_cycles,
        fs.stepped_windows
    );
    assert_eq!(fs.stepped_windows + fs.fast_forwarded_windows, ls.stepped_windows, "window count drifted");
    assert_envelope_tolerance(ff, lit, "refuted DTM-BW cell");
}

#[test]
fn literal_opt_out_disables_the_envelope_tier() {
    // `BatchOptions::literal()` and a non-positive tolerance must both keep
    // the envelope tier off — the opt-out composes with the existing
    // literal switch rather than riding only on `fast_forward`.
    let opts = BatchOptions::literal();
    assert!(opts.envelope_tolerance <= 0.0, "literal() must zero the envelope tolerance");
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let power = FbdimmPowerModel::paper_defaults();
    let cpu_power = PaperCpuPower::new();
    let store = Arc::new(CharStore::new());
    let cfg = base_config(CoolingConfig::aohs_1_5());
    let build = || {
        vec![BatchCell::new(&cpu, &mem, cfg, mixes::w1(), Box::new(NoLimit::new(&cpu)), Arc::clone(&store))
            .with_rotation_threads(1)]
    };
    let engine = BatchedSimEngine::new(&cpu, &mem, &power, &cpu_power);
    // Exact fast-forwards on, envelope off: the cell may steady-FF but must
    // never report envelope activity.
    let exact = engine.run(build(), &BatchOptions { envelope_tolerance: 0.0, ..BatchOptions::default() });
    assert_eq!(exact[0].1.envelope_cycles, 0);
    assert_eq!(exact[0].1.envelope_fallbacks, 0);
    let lit = engine.run(build(), &BatchOptions::literal());
    assert_eq!(lit[0].1.fast_forwarded_windows, 0);
    assert_eq!(lit[0].1.envelope_cycles, 0);
}
