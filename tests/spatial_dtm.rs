//! End-to-end contracts of the spatially resolved DTM policies: per-channel
//! caps must key off the NaN-safe hottest layer on bufferless (rank-pair)
//! and 4-high 3D stacks, steering weights must stay a distribution through
//! real simulation runs, and the spatial actuators must actually show up in
//! the results (asymmetric throttle residency, migrated traffic, a flatter
//! thermal field than global DTM-BW).

use dram_thermal::memtherm::dtm::policy::DtmPolicy;
use dram_thermal::memtherm::dtm::NoLimit;
use dram_thermal::prelude::*;
use dram_thermal::workloads::rng::SmallRng;

fn spot(stack: StackKind) -> MemSpot {
    MemSpot::new(MemSpotConfig::tiny(CoolingConfig::aohs_1_5()).with_stack(stack))
}

/// Limits derated so the test-scale batches actually reach a thermal
/// emergency: rank pairs and 3D stacks run cooler than the FBDIMM AMB era,
/// so their DRAM TDP sits just below the unconstrained peak
/// ([`ThermalLimits::with_dram_tdp`] keeps the TDP−TRP margin).
fn derated(tdp_c: f64) -> ThermalLimits {
    ThermalLimits::paper_fbdimm().with_dram_tdp(tdp_c)
}

fn spot_with_limits(stack: StackKind, limits: ThermalLimits) -> MemSpot {
    let mut cfg = MemSpotConfig::tiny(CoolingConfig::aohs_1_5()).with_stack(stack);
    cfg.limits = limits;
    MemSpot::new(cfg)
}

#[test]
fn cbw_keys_off_the_nan_safe_hottest_layer_on_rank_pairs() {
    // A DDR4/5 rank pair has no buffer die: every observation reports a NaN
    // buffer maximum, and DTM-CBW's per-channel selectors must throttle from
    // the DRAM layers alone (NaN never reaches a threshold or a PID
    // integral) while still enforcing the DRAM TDP.
    let limits = derated(63.0);
    let mut spot = spot_with_limits(StackKind::RankPair, limits);
    let cpu = spot.cpu_config().clone();
    let mut cbw = DtmCbw::with_pid(cpu, limits);
    let r = spot.run(&mixes::w1(), &mut cbw);
    assert!(r.completed, "CBW must not stall on the missing buffer die");
    assert!(r.max_amb_c.is_nan(), "no buffer layer -> NaN maximum");
    assert!(r.max_dram_c > 60.0 && r.max_dram_c < 63.5, "DRAM throttled near its TDP: {:.2}", r.max_dram_c);
    // The per-channel actuator really engaged, and the result reports it.
    assert_eq!(r.channel_throttle_residency.len(), 2, "one entry per logical channel");
    assert!(
        r.channel_throttle_residency.iter().any(|&f| f > 0.0),
        "a run that grazes the TDP must have throttled some channel: {:?}",
        r.channel_throttle_residency
    );
    assert!(r.channel_throttle_residency.iter().all(|&f| (0.0..=1.0).contains(&f)));
    assert_eq!(r.migrated_traffic_bytes, 0.0, "CBW throttles, it does not migrate");
}

#[test]
fn cbw_keys_off_the_inner_die_on_4_high_stacks() {
    // On a 3D stack the hottest layer is the inner die next to the base;
    // the per-channel selectors see it through the channel's hottest-layer
    // maxima and must keep it at (or below) the DRAM TDP, like DTM-BW does
    // globally — while never throttling more of the machine than DTM-BW.
    let limits = derated(77.0);
    let mut spot = spot_with_limits(StackKind::stacked4(), limits);
    let cpu = spot.cpu_config().clone();
    let mut bw = DtmBw::new(cpu.clone(), limits);
    let rb = spot.run(&mixes::w1(), &mut bw);
    let mut cbw = DtmCbw::new(cpu, limits);
    let rc = spot.run(&mixes::w1(), &mut cbw);
    assert!(rb.completed && rc.completed);
    let slack = 0.5; // one DTM interval of heating past the trip point
    assert!(rc.max_dram_c < limits.dram_tdp_c + slack, "CBW inner die at {:.2}", rc.max_dram_c);
    assert!(rb.max_dram_c < limits.dram_tdp_c + slack, "BW inner die at {:.2}", rb.max_dram_c);
    assert!(rc.channel_throttle_residency.iter().any(|&f| f > 0.0), "CBW must actually throttle");
    assert!(rc.channel_throttle_residency.iter().all(|&f| (0.0..=1.0).contains(&f)));
    // With this symmetric workload both channels heat alike, so per-channel
    // caps land in the same ballpark as the global cap (the models differ —
    // characterized global caps vs linear service scaling — so exact parity
    // is not required); a pathological stall would blow this bound.
    assert!(
        rc.running_time_s <= rb.running_time_s * 1.5,
        "per-channel caps far off the global cap: CBW {:.1}s vs BW {:.1}s",
        rc.running_time_s,
        rb.running_time_s
    );
}

#[test]
fn mig_migrates_traffic_and_flattens_the_field_vs_bw() {
    let limits = derated(77.0);
    let mut spot = spot_with_limits(StackKind::stacked4(), limits);
    let cpu = spot.cpu_config().clone();
    let mut bw = DtmBw::new(cpu.clone(), limits);
    let rb = spot.run(&mixes::w1(), &mut bw);
    let mut mig = DtmMig::new(cpu, limits);
    let rm = spot.run(&mixes::w1(), &mut mig);
    assert!(rb.completed && rm.completed);
    // Steering really moved traffic, and only MIG reports it.
    assert!(rm.migrated_traffic_bytes > 0.0, "MIG must migrate traffic");
    assert_eq!(rb.migrated_traffic_bytes, 0.0, "BW never migrates");
    // The migration-aware field is flatter: hottest-vs-coldest position
    // spread strictly below the global-throttling reference.
    let (sb, sm) = (rb.position_peak_spread_c(), rm.position_peak_spread_c());
    assert!(sm < sb, "MIG spread {sm:.2} degC must undercut BW spread {sb:.2} degC");
    // The TDP contract is not weakened by migrating.
    assert!(rm.max_dram_c < limits.dram_tdp_c + 0.5, "MIG inner die at {:.2}", rm.max_dram_c);
}

#[test]
fn scalar_policies_report_empty_spatial_actuation() {
    let mut spot = spot(StackKind::Fbdimm);
    let mut nolimit = NoLimit::new(spot.cpu_config());
    let r = spot.run(&mixes::w1(), &mut nolimit);
    assert!(r.completed);
    assert_eq!(r.channel_throttle_residency, vec![0.0, 0.0], "No-limit never throttles any channel");
    assert_eq!(r.migrated_traffic_bytes, 0.0);
    // A global cap counts as throttling every channel equally.
    let cpu = spot.cpu_config().clone();
    let mut bw = DtmBw::new(cpu, ThermalLimits::paper_fbdimm());
    let r = spot.run(&mixes::w1(), &mut bw);
    assert_eq!(r.channel_throttle_residency.len(), 2);
    assert!(r.channel_throttle_residency[0] > 0.0, "BW throttles (globally): {:?}", r.channel_throttle_residency);
    assert_eq!(
        r.channel_throttle_residency[0], r.channel_throttle_residency[1],
        "a global cap is symmetric across channels"
    );
}

#[test]
fn mig_steering_weights_stay_a_distribution_through_a_real_run() {
    // Seeded property test at the policy boundary: drive DTM-MIG with the
    // observations of a real heating scene (plus random power jitter) and
    // check every emitted plan carries normalized, non-negative weights on
    // both bufferless and stacked topologies.
    for kind in [StackKind::RankPair, StackKind::stacked4()] {
        let mem = FbdimmConfig::ddr2_667_paper();
        let cooling = CoolingConfig::aohs_1_5();
        let limits = ThermalLimits::paper_fbdimm();
        let mut scene = DimmThermalScene::with_topology(
            mem.logical_channels,
            mem.dimms_per_channel,
            cooling,
            limits,
            AmbientParams::isolated(&cooling),
            kind.topology(&cooling),
        );
        let mut mig = DtmMig::new(CpuConfig::paper_quad_core(), limits);
        let mut rng = SmallRng::seed_from_u64(0x317_0000 + kind.topology(&cooling).depth() as u64);
        let mut spatial_steps = 0u32;
        for step in 0..500 {
            let powers: Vec<FbdimmPowerBreakdown> = (0..scene.len())
                .map(|i| FbdimmPowerBreakdown {
                    amb_watts: (5.0 - 0.4 * (i % 4) as f64) * (0.8 + 0.4 * rng.next_f64()),
                    dram_watts: 2.0 * rng.next_f64(),
                })
                .collect();
            scene.step(&powers, 0.0, 1.0);
            let plan = mig.decide(&scene.observe(), 1.0);
            if plan.is_scalar() {
                // Before the field's spread first crosses the hysteresis
                // band, MIG leaves the natural distribution alone.
                continue;
            }
            spatial_steps += 1;
            assert_eq!(plan.steering.len(), scene.len(), "step {step}");
            let sum: f64 = plan.steering.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "step {step}: weights sum to {sum}");
            assert!(plan.steering.iter().all(|&w| (0.0..=1.0).contains(&w)), "step {step}");
        }
        assert!(spatial_steps > 100, "the heating scene must trigger migration: {spatial_steps} spatial steps");
    }
}
