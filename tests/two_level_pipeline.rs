//! Cross-crate integration test of the full level-1 pipeline: synthetic
//! workload streams -> shared L2 cache -> FBDIMM memory simulator ->
//! characterization points consumed by the thermal simulator.

use dram_thermal::prelude::*;

#[test]
fn characterization_reflects_workload_intensity() {
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let budget = 20_000;

    let mut heavy = CharacterizationTable::new(cpu.clone(), mem, mixes::w1().apps, budget);
    let mut moderate = CharacterizationTable::new(cpu.clone(), mem, mixes::w8().apps, budget);
    let full = RunningMode::full_speed(&cpu);

    let h = heavy.point(&full);
    let m = moderate.point(&full);

    // W1 contains only >10 GB/s applications, W8 mixes moderate ones.
    assert!(h.total_gbps() > m.total_gbps(), "W1 {} vs W8 {}", h.total_gbps(), m.total_gbps());
    // Both stay within the physical peak of the memory system.
    assert!(h.total_gbps() < mem.peak_read_bandwidth_gbps() * 1.6);
    // Both make forward progress and issue traffic on every DIMM position.
    assert!(h.instr_rate_total > 0.0 && m.instr_rate_total > 0.0);
    assert_eq!(h.dimm_traffic.len(), mem.dimm_positions());
    assert!(h.dimm_traffic.iter().all(|d| d.local_gbps > 0.0));
}

#[test]
fn bandwidth_caps_and_core_gating_compose_in_the_characterization() {
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let mut table = CharacterizationTable::new(cpu.clone(), mem, mixes::w3().apps, 20_000);
    let full = table.point(&RunningMode::full_speed(&cpu));
    let capped = table.point(&RunningMode::full_speed(&cpu).with_bandwidth_cap_gbps(6.4));
    let gated = table.point(&RunningMode::full_speed(&cpu).with_active_cores(1));

    assert!(capped.total_gbps() <= 7.2, "cap leaked: {}", capped.total_gbps());
    assert!(capped.instr_rate_total < full.instr_rate_total);
    assert!(gated.total_gbps() < full.total_gbps());
    assert!(gated.ipc_ref_sum < full.ipc_ref_sum);
}

#[test]
fn power_model_turns_characterized_traffic_into_sane_subsystem_power() {
    let cpu = CpuConfig::paper_quad_core();
    let mem = FbdimmConfig::ddr2_667_paper();
    let mut table = CharacterizationTable::new(cpu.clone(), mem, mixes::w2().apps, 20_000);
    let point = table.point(&RunningMode::full_speed(&cpu));

    let power = FbdimmPowerModel::paper_defaults();
    let idle = power.subsystem_idle_power_watts(mem.logical_channels, mem.dimms_per_channel, mem.phys_per_logical);
    let busy = power.subsystem_power_watts_from_point(&point, mem.dimms_per_channel, mem.phys_per_logical);

    // Busy power exceeds idle power but stays within the ~100 W figure the
    // paper quotes for a fully configured FBDIMM subsystem.
    assert!(busy > idle, "busy {busy} W vs idle {idle} W");
    assert!(busy < 130.0, "busy power {busy} W is implausible");

    // The hottest DIMM must be the one closest to the controller on some
    // channel (it carries all the bypass traffic).
    let hottest = point
        .dimm_traffic
        .iter()
        .max_by(|a, b| (a.local_gbps + a.bypass_gbps).partial_cmp(&(b.local_gbps + b.bypass_gbps)).unwrap())
        .unwrap();
    assert_eq!(hottest.dimm, 0);
}
